package dcsim

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/series"
)

var testStart = time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)

func TestMetricNames(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range AllMetrics() {
		name := m.String()
		if name == "" || name == "unknown" {
			t.Fatalf("metric %d has no name", m)
		}
		if seen[name] {
			t.Fatalf("duplicate metric name %q", name)
		}
		seen[name] = true
	}
	if len(seen) != 14 {
		t.Fatalf("want 14 metric families, got %d", len(seen))
	}
	if Metric(99).String() != "unknown" {
		t.Fatal("out-of-range metric should be unknown")
	}
	if ProfileFor(Metric(-1)).Name != "unknown" {
		t.Fatal("out-of-range profile should be unknown")
	}
}

func TestProfilesSane(t *testing.T) {
	for _, m := range AllMetrics() {
		p := ProfileFor(m)
		if !(p.NyquistLo > 0) || !(p.NyquistHi > p.NyquistLo) {
			t.Errorf("%s: bad Nyquist range [%v, %v]", p.Name, p.NyquistLo, p.NyquistHi)
		}
		if len(p.PollIntervals) == 0 {
			t.Errorf("%s: no poll intervals", p.Name)
		}
		if p.Swing <= 0 {
			t.Errorf("%s: non-positive swing", p.Name)
		}
		// Noise and quantization must stay below 1 % of the signal power
		// or the 99 % energy cut-off runs past the band edge into the
		// noise floor (DESIGN.md choice 1).
		sigPower := p.Swing * p.Swing / 20
		noisePower := p.NoiseAmp*p.NoiseAmp/3 + p.QuantStep*p.QuantStep/12
		if noisePower > 0.01*sigPower {
			t.Errorf("%s: noise power %v above 1%% of signal power %v", p.Name, noisePower, sigPower)
		}
	}
}

func TestBandLimitedIsBandLimited(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b, err := NewBandLimited(rng, 0.01, 5, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Sample at 10x the band limit and verify the PSD is empty above it.
	const fs = 0.1
	n := 8192
	x := make([]float64, n)
	for i := range x {
		x[i] = b.At(float64(i) / fs)
	}
	// A Hann window keeps spectral leakage from the non-bin-aligned
	// components out of the out-of-band measurement.
	spec, err := dsp.Periodogram(x, fs, dsp.Hann{})
	if err != nil {
		t.Fatal(err)
	}
	var inBand, outBand float64
	for k := 1; k < len(spec.Freqs); k++ {
		if spec.Freqs[k] <= 0.012 {
			inBand += spec.Power[k]
		} else {
			outBand += spec.Power[k]
		}
	}
	if outBand > 1e-5*inBand {
		t.Fatalf("energy above band limit: %v vs %v in band", outBand, inBand)
	}
}

func TestBandLimitedEdgeComponentVisible(t *testing.T) {
	// The component at the band edge must carry enough energy for a 99%
	// cut-off to include it.
	rng := rand.New(rand.NewSource(7))
	b, err := NewBandLimited(rng, 0.02, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	var edgePower, total float64
	for _, c := range b.comps {
		p := c.amp * c.amp
		total += p
		if c.freq == 0.02 {
			edgePower += p
		}
	}
	if edgePower < 0.02*total {
		t.Fatalf("edge component carries %v of %v (<2%%)", edgePower, total)
	}
}

func TestBandLimitedErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewBandLimited(rng, 0, 1, 5); err == nil {
		t.Fatal("zero band limit should fail")
	}
	b, err := NewBandLimited(rng, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Components() != 1 {
		t.Fatalf("nComps<1 should clamp to 1, got %d", b.Components())
	}
}

func TestWhiteNoiseDeterministicAndBounded(t *testing.T) {
	for i := 0; i < 1000; i++ {
		tm := float64(i) * 1.7
		a := whiteNoise(42, tm)
		b := whiteNoise(42, tm)
		if a != b {
			t.Fatal("noise not deterministic")
		}
		if a < -1 || a > 1 {
			t.Fatalf("noise out of range: %v", a)
		}
		if whiteNoise(43, tm) == a && i > 10 {
			t.Fatal("different seeds should decorrelate")
		}
	}
}

func TestWhiteNoiseZeroMeanProperty(t *testing.T) {
	f := func(seed uint64) bool {
		var sum float64
		for i := 0; i < 2000; i++ {
			sum += whiteNoise(seed, float64(i)*0.37)
		}
		return math.Abs(sum/2000) < 0.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBurstWindowing(t *testing.T) {
	b := Burst{Start: 100, Duration: 50, Freq: 2, Amp: 3}
	if b.At(99.9) != 0 || b.At(150) != 0 {
		t.Fatal("burst leaked outside its window")
	}
	// Envelope peaks mid-burst.
	var maxAbs float64
	for tm := 100.0; tm < 150; tm += 0.01 {
		if a := math.Abs(b.At(tm)); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs < 2.5 || maxAbs > 3.01 {
		t.Fatalf("burst peak %v, want ~3", maxAbs)
	}
	if (Burst{Duration: 0}).At(0) != 0 {
		t.Fatal("zero-duration burst should be silent")
	}
}

func TestFlapTrain(t *testing.T) {
	bursts := FlapTrain(100, 1000, 50, 3500, 0.1, 2)
	if len(bursts) != 4 {
		t.Fatalf("bursts = %d, want 4 (at 100, 1100, 2100, 3100)", len(bursts))
	}
	for i, b := range bursts {
		if b.Start != 100+float64(i)*1000 || b.Duration != 50 {
			t.Fatalf("burst %d = %+v", i, b)
		}
	}
	if got := FlapTrain(0, 0, 10, 100, 1, 1); got != nil {
		t.Fatal("zero period should yield no bursts")
	}
	if got := FlapTrain(0, 10, 0, 100, 1, 1); got != nil {
		t.Fatal("zero burst length should yield no bursts")
	}
}

func TestDeviceSampleQuantized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d, err := NewDevice("test", Temperature, 1e-4, 300*time.Second, rng, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		v := d.At(float64(i) * 301.7)
		// Temperature quantum is 0.5.
		if r := math.Mod(v, 0.5); math.Abs(r) > 1e-9 && math.Abs(r-0.5) > 1e-9 {
			t.Fatalf("sample %v not on 0.5 grid", v)
		}
	}
	// Harmonic quantization rounds the band limit down to a whole number
	// of diurnal harmonics: floor(1e-4 * 86400) = 8 cycles/day.
	if want := 2 * 8 * DiurnalFreq; math.Abs(d.TrueNyquist-want) > 1e-12 {
		t.Fatalf("TrueNyquist = %v, want %v", d.TrueNyquist, want)
	}
	if got := d.PollRate(); math.Abs(got-1.0/300) > 1e-12 {
		t.Fatalf("PollRate = %v", got)
	}
	if !d.Oversampled() {
		t.Fatal("1/300 Hz poll of 2e-4 Hz Nyquist device is oversampled")
	}
}

func TestDeviceTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d, err := NewDevice("test", LinkUtil, 1e-3, 30*time.Second, rng, 7)
	if err != nil {
		t.Fatal(err)
	}
	u := d.Trace(testStart, 0, time.Hour)
	if u.Len() != 120 {
		t.Fatalf("trace length %d, want 120", u.Len())
	}
	if u.Interval != 30*time.Second {
		t.Fatalf("interval = %v", u.Interval)
	}
	// Deterministic: same call yields the same trace.
	u2 := d.Trace(testStart, 0, time.Hour)
	for i := range u.Values {
		if u.Values[i] != u2.Values[i] {
			t.Fatal("trace not deterministic")
		}
	}
}

func TestDeviceTraceAtRate(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d, err := NewDevice("test", CPUUtil5pct, 1e-3, 30*time.Second, rng, 3)
	if err != nil {
		t.Fatal(err)
	}
	u, err := d.TraceAtRate(testStart, 0, 10*time.Minute, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 300 {
		t.Fatalf("len = %d, want 300", u.Len())
	}
	if _, err := d.TraceAtRate(testStart, 0, time.Minute, 0); err == nil {
		t.Fatal("zero rate should fail")
	}
}

func TestEstimatorRecoversTrueNyquist(t *testing.T) {
	// The paper's pipeline end-to-end on a simulated device: a day of
	// production polls, Nyquist estimate must be within a factor ~1.5 of
	// ground truth (leakage and noise allow slight inflation, the energy
	// cut-off slight deflation).
	rng := rand.New(rand.NewSource(11))
	d, err := NewDevice("test", Temperature, 2.5e-4, 60*time.Second, rng, 13)
	if err != nil {
		t.Fatal(err)
	}
	u := d.Trace(testStart, 0, 24*time.Hour)
	var e core.Estimator
	res, err := e.Estimate(u)
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.NyquistRate / d.TrueNyquist
	if ratio < 0.4 || ratio > 1.6 {
		t.Fatalf("estimated %v vs true %v (ratio %v)", res.NyquistRate, d.TrueNyquist, ratio)
	}
}

func TestCounterTraceMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	d, err := NewDevice("sw1/drops", UnicastDrops, 3e-4, 30*time.Second, rng, 77)
	if err != nil {
		t.Fatal(err)
	}
	u := d.CounterTrace(testStart, 0, 6*time.Hour)
	if u.Len() != 720 {
		t.Fatalf("len = %d", u.Len())
	}
	for i := 1; i < u.Len(); i++ {
		if u.Values[i] < u.Values[i-1] {
			t.Fatalf("counter decreased at %d: %v -> %v", i, u.Values[i-1], u.Values[i])
		}
	}
	// Whole events only.
	for _, v := range u.Values {
		if v != math.Floor(v) {
			t.Fatalf("fractional count %v", v)
		}
	}
}

func TestRateFromCounterRecoversNyquist(t *testing.T) {
	// Counter export -> difference -> estimate: the pipeline the paper
	// applies to drop/discard metrics must still find the rate signal's
	// Nyquist rate.
	rng := rand.New(rand.NewSource(14))
	d, err := NewDevice("sw2/discards", OutboundDiscards, 4e-4, 30*time.Second, rng, 78)
	if err != nil {
		t.Fatal(err)
	}
	counter := d.CounterTrace(testStart, 0, 24*time.Hour)
	rate, err := RateFromCounter(counter)
	if err != nil {
		t.Fatal(err)
	}
	var e core.Estimator
	res, err := e.Estimate(rate)
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.NyquistRate / d.TrueNyquist
	if ratio < 0.3 || ratio > 2.5 {
		t.Fatalf("counter-path estimate %v vs true %v (ratio %v)", res.NyquistRate, d.TrueNyquist, ratio)
	}
}

func TestRateFromCounterErrors(t *testing.T) {
	if _, err := RateFromCounter(nil); err == nil {
		t.Fatal("nil trace should fail")
	}
	u := &series.Uniform{Interval: time.Second, Values: []float64{1}}
	if _, err := RateFromCounter(u); err == nil {
		t.Fatal("single sample should fail")
	}
}

func TestFleetDefaults(t *testing.T) {
	f, err := NewFleet(FleetConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 1613 {
		t.Fatalf("fleet size %d, want 1613", f.Len())
	}
	by := f.ByMetric()
	if len(by) != 14 {
		t.Fatalf("metric families %d, want 14", len(by))
	}
	for m, devs := range by {
		if len(devs) < 1613/14 {
			t.Fatalf("%v has only %d devices", m, len(devs))
		}
	}
	// Ground truth oversampling should be near the configured 89 %.
	frac := f.OversampledFraction()
	if frac < 0.84 || frac > 0.94 {
		t.Fatalf("oversampled fraction %v, want ~0.89", frac)
	}
}

func TestFleetDeterministic(t *testing.T) {
	a, err := NewFleet(FleetConfig{Seed: 7, TotalPairs: 56})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFleet(FleetConfig{Seed: 7, TotalPairs: 56})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Devices {
		da, db := a.Devices[i], b.Devices[i]
		if da.ID != db.ID || da.TrueNyquist != db.TrueNyquist || da.PollInterval != db.PollInterval {
			t.Fatalf("device %d differs between same-seed fleets", i)
		}
		if da.At(1234.5) != db.At(1234.5) {
			t.Fatalf("device %d signals differ", i)
		}
	}
	c, err := NewFleet(FleetConfig{Seed: 8, TotalPairs: 56})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Devices {
		if a.Devices[i].TrueNyquist == c.Devices[i].TrueNyquist {
			same++
		}
	}
	if same == len(a.Devices) {
		t.Fatal("different seeds produced identical fleets")
	}
}

func TestFleetRespectsProfileRanges(t *testing.T) {
	f, err := NewFleet(FleetConfig{Seed: 3, TotalPairs: 280, UndersampledFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Devices {
		p := d.Profile()
		if d.TrueNyquist < p.NyquistLo*0.99 || d.TrueNyquist > p.NyquistHi*1.01 {
			t.Fatalf("%s: Nyquist %v outside [%v, %v]", d.ID, d.TrueNyquist, p.NyquistLo, p.NyquistHi)
		}
	}
}

func TestFleetCustomSize(t *testing.T) {
	f, err := NewFleet(FleetConfig{Seed: 2, TotalPairs: 30})
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 30 {
		t.Fatalf("fleet size %d, want 30", f.Len())
	}
}

func TestDeviceBurstRaisesHighFrequencyContent(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	d, err := NewDevice("test", FCSErrors, 1e-3, 30*time.Second, rng, 5)
	if err != nil {
		t.Fatal(err)
	}
	det := core.NewDualRateDetector(core.DualRateConfig{})
	// Clean period: no aliasing at a slow rate safely above 2*bandlimit.
	v1, _, err := det.Probe(d, 0, 3600, 0.037, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Aliased {
		t.Fatalf("clean device flagged aliased (score %v)", v1.Score)
	}
	// Burst at 0.008 Hz inside the probe window: 0.01 Hz sampling
	// (Nyquist 0.005) folds it to 0.002 Hz while the 0.037 Hz sampling
	// captures it faithfully, so the spectra diverge. (A frequency that
	// is an exact multiple of the slow rate would fold to DC and evade
	// the detector — the known blind spot behind the paper's non-integer
	// ratio requirement.)
	d.AddBurst(Burst{Start: 4000, Duration: 5000, Freq: 0.008, Amp: 40})
	v2, _, err := det.Probe(d, 3800, 7200, 0.037, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Aliased {
		t.Fatalf("burst not detected (score %v)", v2.Score)
	}
}

func TestTraceAtRateTooFast(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d, err := NewDevice("x", LinkUtil, 1e-3, time.Second, rng, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.TraceAtRate(testStart, 0, time.Second, 1e12); !errors.Is(err, errTooFast(err)) && err == nil {
		t.Fatal("want error for unrepresentable rate")
	}
}

// errTooFast lets the test above assert on any non-nil error identity.
func errTooFast(err error) error { return err }
