package dcsim

import (
	"math"
	"testing"
)

func TestScenarioCatalogIntegrity(t *testing.T) {
	specs := Scenarios()
	if len(specs) < 6 {
		t.Fatalf("catalog has %d regimes, want >= 6", len(specs))
	}
	seen := map[string]bool{}
	for _, sp := range specs {
		if sp.Name == "" || seen[sp.Name] {
			t.Fatalf("bad or duplicate scenario name %q", sp.Name)
		}
		seen[sp.Name] = true
		if sp.MaxRounds < 1 {
			t.Errorf("%s: MaxRounds %d < 1", sp.Name, sp.MaxRounds)
		}
		if !(sp.QualityBar > 0 && sp.QualityBar < 1) {
			t.Errorf("%s: QualityBar %v outside (0, 1)", sp.Name, sp.QualityBar)
		}
		if !(sp.BudgetFraction > 0) {
			t.Errorf("%s: BudgetFraction %v not positive", sp.Name, sp.BudgetFraction)
		}
		if sp.DefaultDevices < 1 {
			t.Errorf("%s: DefaultDevices %d < 1", sp.Name, sp.DefaultDevices)
		}
	}
}

func TestBuildScenarioUnknownName(t *testing.T) {
	if _, err := BuildScenario("no-such-regime", 1, 8); err == nil {
		t.Fatal("expected an error for an unknown scenario name")
	}
}

// Scenario builds must be fully deterministic in (name, seed, devices):
// golden tests and cross-run debugging depend on it.
func TestBuildScenarioDeterministic(t *testing.T) {
	for _, sp := range Scenarios() {
		a, err := BuildScenario(sp.Name, 42, 24)
		if err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
		b, err := BuildScenario(sp.Name, 42, 24)
		if err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
		if len(a.Fleet.Devices) != 24 || len(b.Fleet.Devices) != 24 {
			t.Fatalf("%s: device counts %d/%d, want 24", sp.Name, len(a.Fleet.Devices), len(b.Fleet.Devices))
		}
		for i := range a.Fleet.Devices {
			da, db := a.Fleet.Devices[i], b.Fleet.Devices[i]
			if da.ID != db.ID || da.TrueNyquist != db.TrueNyquist || da.PollInterval != db.PollInterval {
				t.Fatalf("%s dev %d: rebuild differs (%s %v %v) vs (%s %v %v)",
					sp.Name, i, da.ID, da.TrueNyquist, da.PollInterval, db.ID, db.TrueNyquist, db.PollInterval)
			}
			if a.PhaseOffset[i] != b.PhaseOffset[i] {
				t.Fatalf("%s dev %d: phase offsets differ", sp.Name, i)
			}
			// Device readings are deterministic point functions of time.
			for _, ts := range []float64{0, 1234.5, 86000} {
				if va, vb := da.At(ts), db.At(ts); va != vb {
					t.Fatalf("%s dev %d: At(%v) differs: %v vs %v", sp.Name, i, ts, va, vb)
				}
			}
		}
		// Different seeds must give a different population.
		c, err := BuildScenario(sp.Name, 43, 24)
		if err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
		// Band limits may be seed-independent (the sweep regime pins
		// them to the device index), but the drawn signals must differ.
		same := true
		for i := range a.Fleet.Devices {
			if a.Fleet.Devices[i].CleanAt(1234.5) != c.Fleet.Devices[i].CleanAt(1234.5) {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: seeds 42 and 43 built identical signal populations", sp.Name)
		}
	}
}

func TestScenarioRegimeShapes(t *testing.T) {
	// sweep: band limits strictly non-decreasing across the device index.
	sw, err := BuildScenario("sweep", 7, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sw.Fleet.Devices); i++ {
		if sw.Fleet.Devices[i].TrueNyquist < sw.Fleet.Devices[i-1].TrueNyquist {
			t.Fatalf("sweep: TrueNyquist not monotone at %d: %v < %v",
				i, sw.Fleet.Devices[i].TrueNyquist, sw.Fleet.Devices[i-1].TrueNyquist)
		}
	}
	lo, hi := sw.Fleet.Devices[0].TrueNyquist, sw.Fleet.Devices[31].TrueNyquist
	if hi/lo < 100 {
		t.Errorf("sweep spans only %.1fx, want >= 100x (three decades of band limit)", hi/lo)
	}

	// flatline: exported readings are constant over a day of polls.
	fl, err := BuildScenario("flatline", 7, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range fl.Fleet.Devices {
		iv := d.PollInterval.Seconds()
		first := d.At(0)
		for k := 1; k < 64; k++ {
			if v := d.At(float64(k) * iv * 20); v != first {
				t.Fatalf("flatline %s: reading moved from %v to %v", d.ID, first, v)
			}
		}
	}

	// phasejitter: offsets populated, inside one poll interval; every
	// other regime leaves them zero.
	pj, err := BuildScenario("phasejitter", 7, 32)
	if err != nil {
		t.Fatal(err)
	}
	nonzero := 0
	for i, d := range pj.Fleet.Devices {
		off := pj.PhaseOffset[i]
		if off < 0 || off >= d.PollInterval.Seconds() {
			t.Fatalf("phasejitter dev %d: offset %v outside [0, %v)", i, off, d.PollInterval.Seconds())
		}
		if off != 0 {
			nonzero++
		}
	}
	if nonzero < 16 {
		t.Errorf("phasejitter: only %d/32 devices jittered", nonzero)
	}
	di, err := BuildScenario("diurnal", 7, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i, off := range di.PhaseOffset {
		if off != 0 {
			t.Fatalf("diurnal dev %d: unexpected phase offset %v", i, off)
		}
	}

	// racks: devices within a rack are strongly correlated, devices of
	// different racks are not.
	rk, err := BuildScenario("racks", 7, 32)
	if err != nil {
		t.Fatal(err)
	}
	sameRack := signalCorrelation(rk.Fleet.Devices[0], rk.Fleet.Devices[1])
	crossRack := signalCorrelation(rk.Fleet.Devices[0], rk.Fleet.Devices[16])
	if sameRack < 0.8 {
		t.Errorf("racks: same-rack clean-signal correlation %.2f, want >= 0.8", sameRack)
	}
	if math.Abs(crossRack) > 0.6 {
		t.Errorf("racks: cross-rack clean-signal correlation %.2f, want |r| < 0.6", crossRack)
	}

	// microburst: bursts actually perturb the signal somewhere in a day.
	mb, err := BuildScenario("microburst", 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range mb.Fleet.Devices {
		moved := false
		for k := 0; k < 4096 && !moved; k++ {
			ts := float64(k) * 86400.0 / 4096
			if d.CleanAt(ts) != d.profile.Base+d.sig.Base.At(ts) {
				moved = true
			}
		}
		if !moved {
			t.Errorf("microburst %s: no burst contribution found in a day", d.ID)
		}
	}
}

// signalCorrelation is the Pearson correlation of two devices' clean
// signals sampled over a day, normalized around their bases.
func signalCorrelation(a, b *Device) float64 {
	const n = 2048
	var sa, sb, saa, sbb, sab float64
	for k := 0; k < n; k++ {
		ts := float64(k) * 86400.0 / n
		va := a.CleanAt(ts) - a.profile.Base
		vb := b.CleanAt(ts) - b.profile.Base
		sa += va
		sb += vb
		saa += va * va
		sbb += vb * vb
		sab += va * vb
	}
	cov := sab/n - (sa/n)*(sb/n)
	va := saa/n - (sa/n)*(sa/n)
	vb := sbb/n - (sb/n)*(sb/n)
	if va <= 0 || vb <= 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}
