// Package dcsim is the synthetic datacenter substrate. The paper's
// evaluation measures 1613 metric/device pairs of proprietary production
// traces; dcsim replaces them with a deterministic fleet whose devices emit
// band-limited signals with per-metric Nyquist-rate distributions
// calibrated to the ranges the paper reports (Fig. 5), plus realistic
// sensor quantization, measurement noise and ad-hoc production poll rates.
// See DESIGN.md ("Substitutions") for why this preserves the evaluation's
// shape.
package dcsim

import "time"

// Metric identifies one of the 14 monitored metric families of the paper's
// Fig. 5.
type Metric int

// The 14 metric families, in the order of the paper's Fig. 5 x-axis.
const (
	OutboundDiscards Metric = iota
	UnicastDrops
	MulticastDrops
	MulticastBytes
	UnicastBytes
	InboundDiscards
	MemoryUsage
	PeakEgressBW
	PeakIngressBW
	LinkUtil
	LossyPaths
	CPUUtil5pct
	Temperature
	FCSErrors
	numMetrics // sentinel
)

// NumMetrics is the number of metric families.
const NumMetrics = int(numMetrics)

// AllMetrics returns every metric family in Fig. 5 order.
func AllMetrics() []Metric {
	out := make([]Metric, NumMetrics)
	for i := range out {
		out[i] = Metric(i)
	}
	return out
}

// String returns the metric name as printed in the paper's figures.
func (m Metric) String() string {
	if int(m) < 0 || int(m) >= NumMetrics {
		return "unknown"
	}
	return metricProfiles[m].Name
}

// Profile describes the statistical character of one metric family: the
// range its per-device Nyquist rate is drawn from, the value range,
// quantization, noise and the ad-hoc poll intervals production systems use
// for it today.
type Profile struct {
	// Name is the display name (paper Fig. 4/5 labels).
	Name string
	// Unit is the measurement unit, for reports.
	Unit string
	// NyquistLo and NyquistHi bound the per-device true Nyquist rate in
	// hertz; devices draw log-uniformly from this range. The temperature
	// range is the one the paper states explicitly (7.99e-7 to 3e-3 Hz);
	// the others are calibrated so the fleet reproduces Figs. 1, 4, 5.
	NyquistLo, NyquistHi float64
	// Base and Swing set the value range: signals move within
	// Base +- Swing before quantization.
	Base, Swing float64
	// QuantStep is the sensor resolution (0 = unquantized).
	QuantStep float64
	// NoiseAmp is the white measurement-noise amplitude.
	NoiseAmp float64
	// PollIntervals is the set of ad-hoc production polling intervals
	// from which a device's current interval is drawn (§3.1: defaults
	// and gut feelings, typically 30 s to 15 min).
	PollIntervals []time.Duration
	// Counter marks metrics whose exported value is a cumulative count;
	// the simulator still models the underlying *rate* signal, matching
	// how the paper analyzes drop/discard counters after differencing.
	Counter bool
}

// metricProfiles is indexed by Metric. Poll interval sets reflect common
// collector defaults: fast SNMP counter polls (30/60 s), standard gauge
// polls (60-300 s), and slow environmental polls (300-900 s).
var metricProfiles = [NumMetrics]Profile{
	OutboundDiscards: {
		Name: "Out-bound discards", Unit: "pkts/s",
		NyquistLo: 1e-6, NyquistHi: 2e-3,
		Base: 50, Swing: 45, QuantStep: 1, NoiseAmp: 0.8,
		PollIntervals: intervals(30, 30, 60, 300), Counter: true,
	},
	UnicastDrops: {
		Name: "Unicast drops", Unit: "pkts/s",
		NyquistLo: 1e-6, NyquistHi: 2e-3,
		Base: 40, Swing: 35, QuantStep: 1, NoiseAmp: 0.7,
		PollIntervals: intervals(30, 30, 60, 300), Counter: true,
	},
	MulticastDrops: {
		Name: "Multicast drops", Unit: "pkts/s",
		NyquistLo: 8e-7, NyquistHi: 1.5e-3,
		Base: 20, Swing: 18, QuantStep: 1, NoiseAmp: 0.4,
		PollIntervals: intervals(60, 300), Counter: true,
	},
	MulticastBytes: {
		Name: "Multicast bytes", Unit: "B/s",
		NyquistLo: 1e-6, NyquistHi: 3e-3,
		Base: 1e6, Swing: 8e5, QuantStep: 1024, NoiseAmp: 2e4,
		PollIntervals: intervals(30, 30, 60, 300), Counter: true,
	},
	UnicastBytes: {
		Name: "Unicast bytes", Unit: "B/s",
		NyquistLo: 2e-6, NyquistHi: 3e-3,
		Base: 5e8, Swing: 4e8, QuantStep: 4096, NoiseAmp: 8e6,
		PollIntervals: intervals(30, 30, 60), Counter: true,
	},
	InboundDiscards: {
		Name: "In-bound discards", Unit: "pkts/s",
		NyquistLo: 1e-6, NyquistHi: 2e-3,
		Base: 50, Swing: 45, QuantStep: 1, NoiseAmp: 0.8,
		PollIntervals: intervals(30, 30, 60, 300), Counter: true,
	},
	MemoryUsage: {
		Name: "Memory usage", Unit: "%",
		NyquistLo: 5e-7, NyquistHi: 1e-3,
		Base: 55, Swing: 25, QuantStep: 1, NoiseAmp: 0.3,
		PollIntervals: intervals(60, 300), Counter: false,
	},
	PeakEgressBW: {
		Name: "Peak egress BW", Unit: "Gb/s",
		NyquistLo: 1e-6, NyquistHi: 1.5e-3,
		Base: 18, Swing: 14, QuantStep: 0.1, NoiseAmp: 0.25,
		PollIntervals: intervals(60, 300), Counter: false,
	},
	PeakIngressBW: {
		Name: "Peak ingress BW", Unit: "Gb/s",
		NyquistLo: 1e-6, NyquistHi: 1.5e-3,
		Base: 16, Swing: 12, QuantStep: 0.1, NoiseAmp: 0.25,
		PollIntervals: intervals(60, 300), Counter: false,
	},
	LinkUtil: {
		Name: "Link util", Unit: "%",
		NyquistLo: 1e-5, NyquistHi: 5e-3,
		Base: 45, Swing: 40, QuantStep: 1, NoiseAmp: 0.6,
		PollIntervals: intervals(30, 30, 60, 300), Counter: false,
	},
	LossyPaths: {
		Name: "Lossy paths", Unit: "paths",
		NyquistLo: 1e-5, NyquistHi: 4e-3,
		Base: 25, Swing: 22, QuantStep: 1, NoiseAmp: 0.3,
		PollIntervals: intervals(60, 300), Counter: false,
	},
	CPUUtil5pct: {
		Name: "5-pct CPU util", Unit: "%",
		NyquistLo: 1e-5, NyquistHi: 8e-3,
		Base: 35, Swing: 30, QuantStep: 1, NoiseAmp: 0.5,
		PollIntervals: intervals(30, 30, 60, 300), Counter: false,
	},
	Temperature: {
		Name: "Temperature", Unit: "°C",
		// The paper states this range explicitly (§3.2).
		NyquistLo: 7.99e-7, NyquistHi: 3e-3,
		Base: 45, Swing: 12, QuantStep: 0.5, NoiseAmp: 0.15,
		PollIntervals: intervals(300, 300, 900), Counter: false,
	},
	FCSErrors: {
		Name: "FCS errors", Unit: "frames/s",
		NyquistLo: 1e-6, NyquistHi: 7e-3,
		Base: 18, Swing: 16, QuantStep: 1, NoiseAmp: 0.25,
		PollIntervals: intervals(30, 30, 60, 300), Counter: true,
	},
}

// ProfileFor returns the profile of a metric family.
func ProfileFor(m Metric) Profile {
	if int(m) < 0 || int(m) >= NumMetrics {
		return Profile{Name: "unknown"}
	}
	return metricProfiles[m]
}

func intervals(secs ...int) []time.Duration {
	out := make([]time.Duration, len(secs))
	for i, s := range secs {
		out[i] = time.Duration(s) * time.Second
	}
	return out
}
