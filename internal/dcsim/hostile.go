package dcsim

import (
	"math/rand"
)

// Hostile regimes: workloads that attack the ingest path rather than the
// control loop. The device populations are deliberately benign — clean,
// oversampled harmonic signals any estimator should nail — because the
// point of these regimes is the wire, not the spectrum: ids that churn
// through the MaxSeries cap, samples that arrive out of order against a
// strict-append store, clocks that drift and step. WireGen applies those
// transforms; fleet.RunHostile enforces the bars.

// HostileSpec carries the wire-transform knobs of one hostile regime.
// Zero-valued knobs disable their transform, so each regime enables
// exactly the hostility it is named for.
type HostileSpec struct {
	// ChurnEvery rotates a churning device's wire id every ChurnEvery
	// samples (0 = ids are stable). Rotated ids get an "#e%04d" epoch
	// suffix, modelling pod restarts renaming the exporting target.
	ChurnEvery int
	// ChurnFraction is the fraction of devices whose ids churn.
	ChurnFraction float64
	// BackfillFraction is the long-run fraction of samples withheld and
	// shipped late (0 = strictly in-order wire).
	BackfillFraction float64
	// BackfillLag is how many samples pass before a withheld sample
	// ships. By then newer points have landed (the generator enforces a
	// post-burst on-time cooldown of BackfillLag samples, and the lag
	// exceeds the burst), so a strict-append store must reject every
	// late arrival — the regime asserts that rejection is accounted
	// truthfully, not silently absorbed.
	BackfillLag int
	// BackfillBurst withholds samples in contiguous runs of this length
	// (0 = single samples). Real backfill is bursty — an exporter wedges
	// and flushes its queue — and a contiguous hole costs the estimator
	// one phase discontinuity per burst rather than one per sample.
	BackfillBurst int
	// SkewDriftMax bounds each device's clock-rate error: wire
	// timestamps run at (1+e) true time with e drawn uniformly from
	// [-SkewDriftMax, SkewDriftMax] per device.
	SkewDriftMax float64
	// StepAtFraction places a coordinated clock step at this fraction of
	// the regime's nominal run (MaxRounds of wire traffic); 0 = no step.
	StepAtFraction float64
	// StepSeconds is the size of the coordinated forward step.
	StepSeconds float64
	// StepRateFactor multiplies every device's poll cadence at the step
	// (0 = cadence unchanged). A factor below 1/DriftFactor lands every
	// post-step gap outside the estimator's drift band, so a correct
	// estimator must re-probe its interval lock instead of retuning on
	// garbage gaps.
	StepRateFactor float64
}

// hostileCatalog appends the wire-hostile regimes to the scenario
// catalog. Same treatment as the benign six: seeded, deterministic in
// (name, seed, devices), golden-pinned.
var hostileCatalog = []catalogEntry{
	{
		spec: ScenarioSpec{
			Name:           "cardinality",
			Description:    "cardinality explosion: short-lived series churning through the MaxSeries cap",
			DefaultDevices: 48,
			MaxRounds:      6,
			QualityBar:     0.5,
			BudgetFraction: 0.25,
			Hostile:        true,
		},
		build: buildCardinality,
	},
	{
		spec: ScenarioSpec{
			Name:           "backfill",
			Description:    "backfill storm: a quarter of the wire arrives out of order against the strict-append store",
			DefaultDevices: 48,
			MaxRounds:      6,
			QualityBar:     0.5,
			BudgetFraction: 1,
			Hostile:        true,
		},
		build: buildBackfill,
	},
	{
		spec: ScenarioSpec{
			Name:           "clockskew",
			Description:    "per-device clock drift plus a coordinated step: the estimator must re-probe, not retune on garbage",
			DefaultDevices: 48,
			MaxRounds:      8,
			QualityBar:     0.5,
			BudgetFraction: 1,
			Hostile:        true,
		},
		build: buildClockSkew,
	},
	{
		spec: ScenarioSpec{
			Name:           "podchurn",
			Description:    "pod-churn renaming: every series id rotates mid-run, stressing inventory and estimator state",
			DefaultDevices: 48,
			MaxRounds:      6,
			QualityBar:     0.5,
			BudgetFraction: 0.75,
			Hostile:        true,
		},
		build: buildPodChurn,
	},
}

func init() {
	scenarioCatalog = append(scenarioCatalog, hostileCatalog...)
}

// buildHostileFleet populates s with oversampled harmonic devices whose
// whole band is resolvable inside the ingest estimator's short window.
// The poll cadence is the metric's production interval; the band edge
// sits at 10-25 % of the poll rate (comfortably oversampled, never
// aliased) and the fundamental at a quarter of the band edge, so every
// component completes cycles within a 64-sample window. Sensors are
// ideal (no measurement noise): hostile regimes must not smuggle in
// estimation hardness — a device an estimator cannot nail from clean
// in-order traffic would make the quality bar measure the wrong thing.
// The hostility lives entirely in the wire transform.
func buildHostileFleet(s *Scenario, rng *rand.Rand) error {
	n := len(s.PhaseOffset)
	for i := 0; i < n; i++ {
		m := metricAt(i)
		p, iv := pollIntervalFor(m, rng)
		bl := (0.1 + 0.15*rng.Float64()) / iv
		base, err := NewHarmonicSeries(rng, bl/2, bl, p.Swing, 2)
		if err != nil {
			return err
		}
		seed := uint64(s.Seed) + uint64(i)*7919
		dev := rawDevice(s.scenarioID(m, i), m, p, base, iv, 0, seed)
		s.Fleet.Devices = append(s.Fleet.Devices, dev)
	}
	return nil
}

// buildCardinality: half the fleet rotates its wire id every 8 samples,
// so a full run carries several times more distinct ids than the
// estimator's capacity budget admits. The stable half must keep its
// estimates while the churn floods the cap; LRU eviction must recycle
// slots from dead epochs instead of rejecting forever.
func buildCardinality(s *Scenario, rng *rand.Rand) error {
	s.Hostile = &HostileSpec{ChurnEvery: 8, ChurnFraction: 0.5}
	return buildHostileFleet(s, rng)
}

// buildBackfill: a quarter of every device's samples are withheld in
// 16-sample bursts and shipped 24 samples late, landing behind points
// the store has already accepted. Strict append must reject exactly the
// late arrivals and the accounting must say so.
func buildBackfill(s *Scenario, rng *rand.Rand) error {
	s.Hostile = &HostileSpec{BackfillFraction: 0.25, BackfillLag: 24, BackfillBurst: 16}
	return buildHostileFleet(s, rng)
}

// buildClockSkew: every device's wire clock runs at an independent rate
// error of up to 2 %, and halfway through the run all clocks step
// forward an hour while the poll cadence drops to 0.4x — gaps land
// outside the estimator's drift band, forcing an interval re-probe. The
// trusted pre-step estimate must survive the re-probe and a fresh clean
// estimate must emerge after it.
func buildClockSkew(s *Scenario, rng *rand.Rand) error {
	s.Hostile = &HostileSpec{
		SkewDriftMax:   0.02,
		StepAtFraction: 0.5,
		StepSeconds:    3600,
		StepRateFactor: 0.4,
	}
	return buildHostileFleet(s, rng)
}

// buildPodChurn: every device's id rotates every 128 samples — two
// generations of the whole fleet's names mid-run. Old epochs go idle and
// must age out of the estimator; each new epoch must warm up to a clean
// estimate from scratch.
func buildPodChurn(s *Scenario, rng *rand.Rand) error {
	s.Hostile = &HostileSpec{ChurnEvery: 128, ChurnFraction: 1}
	return buildHostileFleet(s, rng)
}
