package dcsim

import (
	"fmt"
	"math/rand"
	"time"
)

// WireGen turns a scenario's device population into the wire traffic an
// ingest server would actually receive, applying the regime's hostile
// transforms: id churn, backfill lag, clock drift and steps. It is the
// single source of truth for hostile traffic — the in-process harness
// (fleet.RunHostile) and monitorsim's push mode both draw from it, so a
// chaos run against a live nyquistd replays byte-for-byte the same
// samples the golden reports pinned.
//
// The generator is deterministic in the scenario: same (name, seed,
// devices) and the same WireConfig produce the identical sample stream.
// For a benign scenario (Hostile == nil) every transform is the
// identity and the wire is each device polled on its production cadence.

// WireSample is one sample as it appears on the wire.
type WireSample struct {
	// Device indexes the originating device in Scenario.Fleet.Devices.
	Device int
	// ID is the wire series id — the device id, plus an epoch suffix
	// when the regime churns names.
	ID string
	// Time is the wire timestamp (after skew and step transforms).
	Time time.Time
	// Value is the device's measured reading at the sample's true time.
	Value float64
	// Late marks a backfilled sample: it ships after newer points from
	// the same device, so a strict-append store must reject it.
	Late bool
}

// WireConfig parameterizes a WireGen.
type WireConfig struct {
	// SamplesPerRound is how many samples each device contributes per
	// Round call (0 = 64).
	SamplesPerRound int
	// Start anchors wire time zero (zero value = 2026-07-01 UTC).
	Start time.Time
}

// DefaultSamplesPerRound is the per-device round size hostile bars and
// golden reports are calibrated against.
const DefaultSamplesPerRound = 64

type heldSample struct {
	release int // device sample index at which the withheld point ships
	ws      WireSample
}

type wireDev struct {
	dev      *Device
	rng      *rand.Rand
	churns   bool
	interval float64 // current true poll cadence, seconds
	cursor   float64 // next sample's signal time
	idx      int     // samples generated so far
	drift    float64 // clock-rate error epsilon
	stepAt   int     // sample index of the coordinated step (-1 = none)
	stepped  bool
	skewOff  float64 // accumulated wire-clock offset, seconds
	held     []heldSample

	// Backfill burst state: burstLeft samples of the current burst
	// remain withheld; cooldown on-time samples must pass before a new
	// burst may start (the invariant that makes every late release land
	// strictly behind an accepted newer point).
	burstLeft int
	cooldown  int
}

// WireGen generates rounds of wire traffic for one scenario.
type WireGen struct {
	sc    *Scenario
	spr   int
	start time.Time
	devs  []*wireDev
}

// NewWireGen builds the generator for a scenario.
func NewWireGen(s *Scenario, cfg WireConfig) *WireGen {
	spr := cfg.SamplesPerRound
	if spr <= 0 {
		spr = DefaultSamplesPerRound
	}
	start := cfg.Start
	if start.IsZero() {
		start = time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	}
	g := &WireGen{sc: s, spr: spr, start: start}
	h := s.Hostile
	n := len(s.Fleet.Devices)
	rng := rand.New(rand.NewSource(s.Seed ^ int64(fnvName(s.Spec.Name+"/wire"))))
	churnCount := 0
	if h != nil && h.ChurnEvery > 0 {
		churnCount = int(h.ChurnFraction*float64(n) + 0.5)
	}
	stepAt := -1
	if h != nil && h.StepAtFraction > 0 {
		stepAt = int(h.StepAtFraction * float64(s.Spec.MaxRounds*spr))
	}
	for i, d := range s.Fleet.Devices {
		wd := &wireDev{
			dev:      d,
			rng:      rand.New(rand.NewSource(rng.Int63())),
			interval: d.PollInterval.Seconds(),
			cursor:   s.PhaseOffset[i],
			stepAt:   stepAt,
		}
		// Spread the churners evenly across the fleet so churned and
		// stable ids interleave in every metric family.
		if churnCount > 0 && (i+1)*churnCount/n > i*churnCount/n {
			wd.churns = true
		}
		if h != nil && h.SkewDriftMax > 0 {
			wd.drift = h.SkewDriftMax * (2*wd.rng.Float64() - 1)
		}
		g.devs = append(g.devs, wd)
	}
	return g
}

// SamplesPerRound returns the per-device round size in effect.
func (g *WireGen) SamplesPerRound() int { return g.spr }

// Round generates the next round of traffic: SamplesPerRound samples per
// device in device order, with any due backfilled samples released in
// between. Withheld samples whose release index falls beyond the run
// simply never ship, as a crashed exporter's queue never does.
func (g *WireGen) Round() []WireSample {
	h := g.sc.Hostile
	out := make([]WireSample, 0, g.spr*len(g.devs))
	for di, wd := range g.devs {
		for k := 0; k < g.spr; k++ {
			for len(wd.held) > 0 && wd.held[0].release <= wd.idx {
				out = append(out, wd.held[0].ws)
				wd.held = wd.held[1:]
			}
			srcIdx := wd.idx
			ws := g.sample(di, wd)
			if h != nil && h.BackfillFraction > 0 && wd.withhold(h) {
				ws.Late = true
				wd.held = append(wd.held, heldSample{release: srcIdx + backfillLag(h), ws: ws})
				continue
			}
			out = append(out, ws)
		}
	}
	return out
}

// backfillLag returns the effective release lag; it always exceeds the
// burst length (withhold relies on that for the always-rejectable
// invariant).
func backfillLag(h *HostileSpec) int {
	lag := h.BackfillLag
	if lag <= 0 {
		lag = 16
	}
	if burst := h.BackfillBurst; lag <= burst {
		lag = burst + 1
	}
	return lag
}

// withhold decides whether the current sample joins a backfill burst.
// Bursts of BackfillBurst samples start at a rate tuned so the long-run
// withheld fraction is BackfillFraction, with a cooldown of lag on-time
// samples after each burst: when a burst's samples release (lag > burst
// samples after they were drawn), at least one newer on-time point has
// already been accepted, so a strict-append store rejects every late
// arrival.
func (wd *wireDev) withhold(h *HostileSpec) bool {
	if wd.burstLeft > 0 {
		wd.burstLeft--
		if wd.burstLeft == 0 {
			wd.cooldown = backfillLag(h)
		}
		return true
	}
	if wd.cooldown > 0 {
		wd.cooldown--
		return false
	}
	burst := h.BackfillBurst
	if burst <= 0 {
		burst = 1
	}
	lag := backfillLag(h)
	// Expected cycle = burst + cooldown + 1/p; solve for the start
	// probability p that makes burst/cycle equal BackfillFraction.
	p := 1.0
	if wait := float64(burst)*(1/h.BackfillFraction-1) - float64(lag); wait > 1 {
		p = 1 / wait
	}
	if wd.rng.Float64() >= p {
		return false
	}
	wd.burstLeft = burst - 1
	if wd.burstLeft == 0 {
		wd.cooldown = lag
	}
	return true
}

// sample produces the wire sample at the device's current cursor and
// advances the device.
func (g *WireGen) sample(di int, wd *wireDev) WireSample {
	h := g.sc.Hostile
	if wd.stepAt >= 0 && !wd.stepped && wd.idx >= wd.stepAt {
		wd.stepped = true
		wd.skewOff += h.StepSeconds
		if h.StepRateFactor > 0 {
			wd.interval *= h.StepRateFactor
		}
	}
	id := wd.dev.ID
	if wd.churns && h.ChurnEvery > 0 {
		id = fmt.Sprintf("%s#e%04d", id, wd.idx/h.ChurnEvery)
	}
	wire := wd.cursor*(1+wd.drift) + wd.skewOff
	ws := WireSample{
		Device: di,
		ID:     id,
		Time:   g.start.Add(secondsToDuration(wire)),
		Value:  wd.dev.At(wd.cursor),
	}
	wd.cursor += wd.interval
	wd.idx++
	return ws
}

// SkipRounds advances the generator past n rounds without emitting them,
// leaving churn epochs, skew state and backfill queues exactly as if the
// rounds had been sent. Push clients use it to resume a scenario
// mid-stream after a restart.
func (g *WireGen) SkipRounds(n int) {
	for i := 0; i < n; i++ {
		g.Round()
	}
}

// DistinctIDs returns how many distinct wire ids the first rounds rounds
// of traffic carry — the denominator of a hostile regime's
// estimator-capacity budget.
func (g *WireGen) DistinctIDs(rounds int) int {
	h := g.sc.Hostile
	total := rounds * g.spr
	n := 0
	for _, wd := range g.devs {
		if wd.churns && h != nil && h.ChurnEvery > 0 {
			n += (total + h.ChurnEvery - 1) / h.ChurnEvery
		} else {
			n++
		}
	}
	return n
}
