package dcsim

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// FleetConfig parameterizes fleet generation.
type FleetConfig struct {
	// Seed makes the fleet fully deterministic.
	Seed int64
	// TotalPairs is the number of metric/device pairs, spread evenly
	// across the 14 metric families. Zero selects 1613, the paper's
	// population (§3.2).
	TotalPairs int
	// UndersampledFraction, in [0, 1), forces approximately this share
	// of devices to have a true Nyquist rate above their production poll
	// rate (the paper observes ~11 %). Zero selects 0.11. Negative
	// disables forcing and lets the profile ranges decide alone.
	UndersampledFraction float64
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.TotalPairs <= 0 {
		c.TotalPairs = 1613
	}
	if c.UndersampledFraction == 0 {
		c.UndersampledFraction = 0.11
	}
	return c
}

// Fleet is a deterministic population of simulated metric/device pairs.
type Fleet struct {
	// Devices holds every metric/device pair.
	Devices []*Device
	// Seed is the seed the fleet was built with.
	Seed int64
}

// NewFleet builds the synthetic datacenter population. Device i of metric
// m draws its true Nyquist rate log-uniformly from the metric's profile
// range and its poll interval from the profile's ad-hoc production set;
// a configured fraction is then made deliberately under-sampled, matching
// the paper's observation that ~11 % of production pairs are below their
// Nyquist rate.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Fleet{Seed: cfg.Seed}
	metrics := AllMetrics()
	perMetric := cfg.TotalPairs / len(metrics)
	extra := cfg.TotalPairs % len(metrics)
	for mi, m := range metrics {
		n := perMetric
		if mi < extra {
			n++
		}
		p := ProfileFor(m)
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("%s/dev%04d", sanitize(p.Name), i)
			interval := p.PollIntervals[rng.Intn(len(p.PollIntervals))]
			pollRate := 1 / interval.Seconds()

			seed := uint64(cfg.Seed) + uint64(mi)*1000003 + uint64(i)*7919
			var (
				dev *Device
				err error
			)
			if cfg.UndersampledFraction > 0 && rng.Float64() < cfg.UndersampledFraction {
				// Deliberately under-sampled: true Nyquist rate well
				// above the production poll rate (2-32x), with a
				// continuous (non-harmonic) spectrum so the folded
				// content smears and the trace carries the aliased
				// signature the estimator looks for.
				nyq := pollRate * (2 + 30*rng.Float64())
				dev, err = NewContinuousDevice(id, m, nyq/2, interval, rng, seed)
			} else {
				nyq := logUniform(rng, p.NyquistLo, p.NyquistHi)
				// Keep the intended over-sampled devices genuinely
				// over-sampled despite the random poll interval.
				if cfg.UndersampledFraction >= 0 && nyq >= pollRate {
					nyq = pollRate * (0.2 + 0.7*rng.Float64())
				}
				dev, err = NewDevice(id, m, nyq/2, interval, rng, seed)
			}
			if err != nil {
				return nil, err
			}
			f.Devices = append(f.Devices, dev)
		}
	}
	return f, nil
}

// ByMetric groups the fleet's devices by metric family.
func (f *Fleet) ByMetric() map[Metric][]*Device {
	out := make(map[Metric][]*Device, NumMetrics)
	for _, d := range f.Devices {
		out[d.Metric] = append(out[d.Metric], d)
	}
	return out
}

// Len returns the number of metric/device pairs.
func (f *Fleet) Len() int { return len(f.Devices) }

// OversampledFraction returns the ground-truth share of devices whose
// production poll rate exceeds their true Nyquist rate.
func (f *Fleet) OversampledFraction() float64 {
	if len(f.Devices) == 0 {
		return 0
	}
	n := 0
	for _, d := range f.Devices {
		if d.Oversampled() {
			n++
		}
	}
	return float64(n) / float64(len(f.Devices))
}

// logUniform draws from [lo, hi] log-uniformly.
func logUniform(rng *rand.Rand, lo, hi float64) float64 {
	if !(lo > 0) || !(hi > lo) {
		return lo
	}
	return lo * math.Exp(rng.Float64()*math.Log(hi/lo))
}

func sanitize(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+'a'-'A')
		case r == ' ', r == '-', r == '_':
			out = append(out, '_')
		}
	}
	return string(out)
}

// Day is the trace length the paper uses per datapoint ("each datapoint is
// one day's worth of data from a distinct device", Fig. 4).
const Day = 24 * time.Hour
