// Package trace reads and writes monitoring traces so that external data
// (e.g. a real production export) can be audited with the same pipeline
// the simulated fleet uses. The CSV format is two columns — timestamp,
// value — where the timestamp is RFC 3339 or a Unix epoch in seconds
// (fractional allowed). JSON carries a uniform trace with metadata.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/series"
)

// ErrNoData is returned when a reader yields no usable rows.
var ErrNoData = errors.New("trace: no data rows")

// ReadCSV parses a two-column timestamp,value stream. A header row is
// skipped automatically when its value column does not parse as a number.
func ReadCSV(r io.Reader) (*series.Series, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.TrimLeadingSpace = true
	s := &series.Series{}
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: csv row %d: %w", row+1, err)
		}
		row++
		if len(rec) < 2 {
			return nil, fmt.Errorf("trace: csv row %d: need 2 columns, got %d", row, len(rec))
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rec[1]), 64)
		if err != nil {
			if row == 1 {
				continue // header
			}
			return nil, fmt.Errorf("trace: csv row %d: bad value %q", row, rec[1])
		}
		ts, err := parseTimestamp(strings.TrimSpace(rec[0]))
		if err != nil {
			return nil, fmt.Errorf("trace: csv row %d: %w", row, err)
		}
		s.Append(series.Point{Time: ts, Value: v})
	}
	if s.Len() == 0 {
		return nil, ErrNoData
	}
	return s, nil
}

// WriteCSV emits a series as timestamp,value rows with an RFC 3339
// nanosecond timestamp column and a header.
func WriteCSV(w io.Writer, s *series.Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"timestamp", "value"}); err != nil {
		return err
	}
	for _, p := range s.Points() {
		if err := cw.Write([]string{
			p.Time.UTC().Format(time.RFC3339Nano),
			strconv.FormatFloat(p.Value, 'g', -1, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func parseTimestamp(s string) (time.Time, error) {
	if ts, err := time.Parse(time.RFC3339Nano, s); err == nil {
		return ts, nil
	}
	if ts, err := time.Parse(time.RFC3339, s); err == nil {
		return ts, nil
	}
	if sec, err := strconv.ParseFloat(s, 64); err == nil {
		whole := int64(sec)
		frac := sec - float64(whole)
		return time.Unix(whole, int64(frac*1e9)).UTC(), nil
	}
	return time.Time{}, fmt.Errorf("trace: unparseable timestamp %q", s)
}

// UniformJSON is the JSON wire form of a uniform trace.
type UniformJSON struct {
	// Metric names the measured quantity.
	Metric string `json:"metric,omitempty"`
	// Device names the measurement point.
	Device string `json:"device,omitempty"`
	// Start is the time of the first sample.
	Start time.Time `json:"start"`
	// IntervalSeconds is the sample spacing.
	IntervalSeconds float64 `json:"interval_seconds"`
	// Values holds the samples.
	Values []float64 `json:"values"`
}

// WriteJSON emits a uniform trace with metadata.
func WriteJSON(w io.Writer, metric, device string, u *series.Uniform) error {
	enc := json.NewEncoder(w)
	return enc.Encode(UniformJSON{
		Metric:          metric,
		Device:          device,
		Start:           u.Start,
		IntervalSeconds: u.Interval.Seconds(),
		Values:          u.Values,
	})
}

// ReadJSON parses a uniform trace written by WriteJSON.
func ReadJSON(r io.Reader) (*series.Uniform, *UniformJSON, error) {
	var uj UniformJSON
	if err := json.NewDecoder(r).Decode(&uj); err != nil {
		return nil, nil, fmt.Errorf("trace: json: %w", err)
	}
	if uj.IntervalSeconds <= 0 {
		return nil, nil, series.ErrBadInterval
	}
	if len(uj.Values) == 0 {
		return nil, nil, ErrNoData
	}
	u, err := series.NewUniform(uj.Start, time.Duration(uj.IntervalSeconds*float64(time.Second)), uj.Values)
	if err != nil {
		return nil, nil, err
	}
	return u, &uj, nil
}
