package trace

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/series"
)

func TestReadCSVRFC3339(t *testing.T) {
	in := "timestamp,value\n2021-11-10T00:00:00Z,1.5\n2021-11-10T00:01:00Z,2.5\n"
	s, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	vals := s.Values()
	if vals[0] != 1.5 || vals[1] != 2.5 {
		t.Fatalf("values = %v", vals)
	}
}

func TestReadCSVUnixSeconds(t *testing.T) {
	in := "1636502400,10\n1636502460.5,20\n"
	s, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	pts := s.Points()
	if pts[0].Time.Unix() != 1636502400 {
		t.Fatalf("first timestamp = %v", pts[0].Time)
	}
	if got := pts[1].Time.Sub(pts[0].Time); got != 60500*time.Millisecond {
		t.Fatalf("spacing = %v, want 60.5s", got)
	}
}

func TestReadCSVNoHeaderNoData(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); !errors.Is(err, ErrNoData) {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
	if _, err := ReadCSV(strings.NewReader("timestamp,value\n")); !errors.Is(err, ErrNoData) {
		t.Fatalf("header-only err = %v, want ErrNoData", err)
	}
}

func TestReadCSVBadRows(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("justonecolumn\n")); err == nil {
		t.Fatal("one column should fail")
	}
	if _, err := ReadCSV(strings.NewReader("2021-11-10T00:00:00Z,1\n2021-11-10T00:01:00Z,notanumber\n")); err == nil {
		t.Fatal("bad value in body should fail")
	}
	if _, err := ReadCSV(strings.NewReader("notatime,5\n")); err == nil {
		t.Fatal("bad timestamp should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	start := time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)
	s := &series.Series{}
	for i := 0; i < 50; i++ {
		s.AppendValue(start.Add(time.Duration(i)*time.Second), math.Sin(float64(i)))
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("round trip len %d, want %d", got.Len(), s.Len())
	}
	a, b := s.Points(), got.Points()
	for i := range a {
		if !a[i].Time.Equal(b[i].Time) || a[i].Value != b[i].Value {
			t.Fatalf("point %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	start := time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)
	u, err := series.NewUniform(start, 30*time.Second, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "temperature", "dev1", u); err != nil {
		t.Fatal(err)
	}
	got, meta, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Metric != "temperature" || meta.Device != "dev1" {
		t.Fatalf("meta = %+v", meta)
	}
	if got.Interval != 30*time.Second || got.Len() != 4 {
		t.Fatalf("trace = %+v", got)
	}
	if !got.Start.Equal(start) {
		t.Fatalf("start = %v", got.Start)
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, _, err := ReadJSON(strings.NewReader("{bad")); err == nil {
		t.Fatal("bad json should fail")
	}
	if _, _, err := ReadJSON(strings.NewReader(`{"interval_seconds":0,"values":[1]}`)); err == nil {
		t.Fatal("zero interval should fail")
	}
	if _, _, err := ReadJSON(strings.NewReader(`{"interval_seconds":1,"values":[]}`)); !errors.Is(err, ErrNoData) {
		t.Fatal("empty values should be ErrNoData")
	}
}
