// Command repro regenerates the figures of "Towards a Cost vs. Quality
// Sweet Spot for Monitoring Networks" (HotNets 2021) from the synthetic
// fleet.
//
// Usage:
//
//	repro [-fig N | -all | -extras] [-seed S] [-pairs P]
//
// With -all (the default when no flag is given) every figure and extra
// experiment is run in order and printed to stdout. The output of a full
// run is what EXPERIMENTS.md records.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/fleet"
)

func main() {
	var (
		fig    = flag.Int("fig", 0, "figure to regenerate (1-7); 0 means -all")
		all    = flag.Bool("all", false, "run every figure and extra experiment")
		extras = flag.Bool("extras", false, "run only the §4.1/§4.2 and ablation experiments")
		seed   = flag.Int64("seed", 1, "fleet seed")
		pairs  = flag.Int("pairs", 1613, "metric/device pairs in the fleet (paper: 1613)")
		outDir = flag.String("out", "", "also write each figure's data as CSV into this directory")
	)
	flag.Parse()
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			os.Exit(1)
		}
	}

	cfg := fleet.ExperimentConfig{Seed: *seed, Pairs: *pairs}
	run := func(name string, f func() (renderer, error)) {
		fmt.Printf("==== %s ====\n\n", name)
		res, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		if *outDir != "" {
			if err := writeCSVArtifacts(*outDir, res); err != nil {
				fmt.Fprintf(os.Stderr, "repro: %s: csv: %v\n", name, err)
				os.Exit(1)
			}
		}
	}

	figs := map[int]func(){
		1: func() { run("Figure 1", func() (renderer, error) { return fleet.RunFig1(cfg) }) },
		2: func() { run("Figure 2", func() (renderer, error) { return fleet.RunFig2() }) },
		3: func() { run("Figure 3", func() (renderer, error) { return fleet.RunFig3() }) },
		4: func() { run("Figure 4", func() (renderer, error) { return fleet.RunFig4(cfg) }) },
		5: func() { run("Figure 5", func() (renderer, error) { return fleet.RunFig5(cfg) }) },
		6: func() {
			run("Figure 6", func() (renderer, error) { return fleet.RunFig6(fleet.Fig6Config{Seed: *seed}) })
		},
		7: func() {
			run("Figure 7", func() (renderer, error) { return fleet.RunFig7(fleet.Fig7Config{Seed: *seed}) })
		},
	}
	runExtras := func() {
		run("§4.1 dual-rate detection", func() (renderer, error) { return fleet.RunDualRate(*seed) })
		run("§4.2 adaptive vs static", func() (renderer, error) { return fleet.RunAdaptive(*seed) })
		run("Energy cut-off ablation", func() (renderer, error) { return fleet.RunCutoffAblation(*seed) })
		run("Window-length ablation", func() (renderer, error) { return fleet.RunWindowAblation(*seed) })
		run("§4.2 memory ablation", func() (renderer, error) { return fleet.RunMemoryAblation(*seed) })
		run("Estimator-variant ablation", func() (renderer, error) { return fleet.RunEstimatorAblation(*seed) })
		run("§4.2 headroom ablation", func() (renderer, error) { return fleet.RunHeadroomAblation(*seed) })
		run("Cost/quality sweet spot", func() (renderer, error) { return fleet.RunBudgetFrontier(cfg) })
		run("§6 ergodicity", func() (renderer, error) { return fleet.RunErgodicity(*seed) })
	}

	switch {
	case *fig != 0:
		f, ok := figs[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "repro: no figure %d (want 1-7)\n", *fig)
			os.Exit(2)
		}
		f()
	case *extras && !*all:
		runExtras()
	default:
		for i := 1; i <= 7; i++ {
			figs[i]()
		}
		runExtras()
	}
}

// renderer is any experiment result that can print itself.
type renderer interface{ Render() string }

// writeCSVArtifacts emits machine-readable data files for the figure
// results that have natural tabular forms, so plots can be regenerated
// outside the terminal.
func writeCSVArtifacts(dir string, res renderer) error {
	switch r := res.(type) {
	case *fleet.Fig1Result:
		rows := []string{"metric,fraction_above_nyquist"}
		for i, m := range r.Metrics {
			rows = append(rows, csvRow(m, r.FractionAbove[i]))
		}
		return writeLines(filepath.Join(dir, "fig1_oversampling.csv"), rows)
	case *fleet.Fig4Result:
		rows := []string{"metric,reduction_ratio,cdf"}
		for i, m := range r.Metrics {
			for _, p := range r.CDFs[i].LogXPoints(60) {
				rows = append(rows, csvRow(m, p.X, p.Y))
			}
		}
		for _, p := range r.Pooled.LogXPoints(120) {
			rows = append(rows, csvRow("pooled", p.X, p.Y))
		}
		return writeLines(filepath.Join(dir, "fig4_reduction_cdfs.csv"), rows)
	case *fleet.Fig5Result:
		rows := []string{"metric,min,q1,median,q3,max"}
		for i, m := range r.Metrics {
			b := r.Boxes[i]
			rows = append(rows, csvRow(m, b.Min, b.Q1, b.Median, b.Q3, b.Max))
		}
		return writeLines(filepath.Join(dir, "fig5_nyquist_boxes.csv"), rows)
	case *fleet.Fig6Result:
		rows := []string{"index,original,reconstructed"}
		for i := range r.Original {
			rows = append(rows, csvRow(strconv.Itoa(i), r.Original[i], r.Reconstructed[i]))
		}
		return writeLines(filepath.Join(dir, "fig6_roundtrip.csv"), rows)
	case *fleet.Fig7Result:
		rows := []string{"window_start,nyquist_hz,aliased"}
		for _, p := range r.Points {
			rows = append(rows, csvRow(p.WindowStart.UTC().Format("2006-01-02T15:04:05Z"), p.NyquistRate, p.Aliased))
		}
		return writeLines(filepath.Join(dir, "fig7_moving_window.csv"), rows)
	case *fleet.BudgetFrontierResult:
		rows := []string{"budget_fraction,budget_hz,quality,lossless"}
		for _, p := range r.Points {
			rows = append(rows, csvRow(p.BudgetFraction, p.BudgetHz, p.Quality, p.Lossless))
		}
		return writeLines(filepath.Join(dir, "sweetspot_frontier.csv"), rows)
	default:
		return nil // no tabular form
	}
}

// csvRow renders values as one comma-separated line.
func csvRow(vals ...interface{}) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case string:
			parts[i] = x
		case float64:
			parts[i] = strconv.FormatFloat(x, 'g', -1, 64)
		case int:
			parts[i] = strconv.Itoa(x)
		case bool:
			parts[i] = strconv.FormatBool(x)
		default:
			parts[i] = fmt.Sprint(x)
		}
	}
	return strings.Join(parts, ",")
}

func writeLines(path string, lines []string) error {
	return os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644)
}
