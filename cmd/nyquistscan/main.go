// Command nyquistscan audits monitoring traces: it reads timestamp,value
// CSV from a file or stdin, estimates the signal's Nyquist rate with the
// paper's method (§3.2), and reports how much the current collection rate
// could be reduced.
//
// Usage:
//
//	nyquistscan [-cutoff 0.99] [-welch] [-window 6h -step 5m] [file.csv]
//	nyquistscan -fleet 1000 [-workers 8]
//
// With -window the trace is additionally scanned with a sliding window:
// the samples are replayed through the streaming estimator, which keeps
// the spectral state incrementally (O(window) per sample instead of an
// FFT per window) and emits one Fig. 7-style line per step.
//
// With -fleet the command audits a simulated datacenter instead of a
// trace, sharding the devices across the concurrent fleet scanner.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/fleet"
	"repro/internal/trace"
	"repro/nyquist"
)

func main() {
	var (
		cutoff    = flag.Float64("cutoff", nyquist.DefaultEnergyCutoff, "energy fraction cut-off")
		welch     = flag.Bool("welch", false, "use Welch averaging (noise-robust)")
		window    = flag.Duration("window", 0, "sliding-window length (0 = whole trace only)")
		step      = flag.Duration("step", 5*time.Minute, "sliding-window step")
		counter   = flag.Bool("counter", false, "treat the trace as a cumulative counter (difference into a rate first)")
		linear    = flag.Bool("lineardetrend", false, "remove a least-squares line instead of the mean (robust for short windows)")
		fleetSize = flag.Int("fleet", 0, "audit a simulated fleet of this many metric/device pairs instead of a trace")
		workers   = flag.Int("workers", 0, "fleet scan worker pool size (0 = GOMAXPROCS)")
		seed      = flag.Int64("seed", 7, "fleet generation seed")
	)
	flag.Parse()

	if *fleetSize > 0 {
		scanFleet(*fleetSize, *workers, *seed, *cutoff)
		return
	}

	var in io.Reader = os.Stdin
	name := "stdin"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
		name = flag.Arg(0)
	}
	s, err := trace.ReadCSV(in)
	if err != nil {
		fatal(err)
	}
	u, err := s.RegularizeAuto()
	if err != nil {
		fatal(fmt.Errorf("regularize: %w", err))
	}
	if *counter {
		u, err = fleet.RateFromCounter(u)
		if err != nil {
			fatal(fmt.Errorf("counter differencing: %w", err))
		}
		fmt.Println("counter mode: analyzing the differenced rate signal")
	}
	detrend := nyquist.DetrendMean
	if *linear {
		detrend = nyquist.DetrendLinear
	}
	est, err := nyquist.NewEstimator(nyquist.EstimatorConfig{EnergyCutoff: *cutoff, Welch: *welch, Detrend: detrend})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("trace: %s (%d samples, interval %v, rate %.4g Hz)\n",
		name, u.Len(), u.Interval, u.SampleRate())
	if gaps, err := s.Gaps(0); err == nil && len(gaps) > 0 {
		fmt.Printf("gaps: %d (largest %v) — filled by nearest-neighbour re-sampling\n",
			len(gaps), largestGap(gaps))
	}
	if q := nyquist.EstimateStep(u.Values); q > 0 {
		fmt.Printf("quantization step: %.4g\n", q)
	}

	res, err := est.Estimate(u)
	switch {
	case errors.Is(err, nyquist.ErrAliased):
		fmt.Println("verdict: ALIASED — the trace appears under-sampled; the Nyquist rate cannot be")
		fmt.Println("recovered from it (the paper records -1). Increase the collection rate and re-scan.")
	case err != nil:
		fatal(err)
	default:
		fmt.Printf("nyquist rate: %.4g Hz (cut-off frequency %.4g Hz, %.2f%% energy captured)\n",
			res.NyquistRate, res.CutoffFreq, 100*res.EnergyCaptured)
		fmt.Printf("possible reduction: %.1fx (sampling every %v would suffice)\n",
			res.ReductionRatio, rateToInterval(res.NyquistRate))
		if res.ReductionRatio < 1.2 {
			fmt.Println("note: the current rate is close to the requirement; keep it.")
		}
	}

	if *window > 0 {
		// The streaming engine reproduces the paper-default estimator
		// (plain FFT, mean detrend); variant configurations keep the
		// batch moving-window path so the flags stay honored.
		if *welch || *linear {
			if err := batchScan(est, u, *window, *step); err != nil {
				fatal(fmt.Errorf("moving window: %w", err))
			}
		} else if err := streamScan(u, *window, *step, *cutoff); err != nil {
			fatal(fmt.Errorf("sliding window: %w", err))
		}
	}
}

// batchScan runs the batch estimator over moving windows — the path for
// estimator variants (Welch, linear detrend) the streaming engine does
// not reproduce.
func batchScan(est *nyquist.Estimator, u *nyquist.Uniform, window, step time.Duration) error {
	wins, err := est.MovingWindow(u, window, step)
	if err != nil {
		return err
	}
	fmt.Printf("\nmoving-window scan (%v window, %v step):\n", window, step)
	for _, w := range wins {
		switch {
		case errors.Is(w.Err, nyquist.ErrAliased):
			fmt.Printf("  %s  aliased\n", w.WindowStart.Format(time.RFC3339))
		case w.Err != nil:
			fmt.Printf("  %s  error: %v\n", w.WindowStart.Format(time.RFC3339), w.Err)
		default:
			fmt.Printf("  %s  %.4g Hz\n", w.WindowStart.Format(time.RFC3339), w.Result.NyquistRate)
		}
	}
	return nil
}

// streamScan replays the trace through the streaming estimator, printing
// one line per emitted window — the incremental version of the Fig. 7
// moving-window scan.
func streamScan(u *nyquist.Uniform, window, step time.Duration, cutoff float64) error {
	winSamples := int(window / u.Interval)
	if winSamples < 2 {
		// Guard before StreamConfig, whose zero WindowSamples would
		// silently select the 1024-sample default.
		return nyquist.ErrTooShort
	}
	stepSamples := int(step / u.Interval)
	if stepSamples < 1 {
		stepSamples = 1
	}
	st, err := nyquist.NewStreamEstimator(nyquist.StreamConfig{
		Interval:      u.Interval,
		WindowSamples: winSamples,
		EmitEvery:     stepSamples,
		EnergyCutoff:  cutoff,
		Start:         u.Start,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nsliding-window scan (%v window, %v step, streaming):\n", window, step)
	n := 0
	for _, up := range st.Feed(u.Values) {
		n++
		switch {
		case errors.Is(up.Err, nyquist.ErrAliased):
			fmt.Printf("  %s  aliased (streak %d) — try polling every %v\n",
				up.WindowStart.Format(time.RFC3339), up.AliasStreak, up.SuggestedInterval)
		case up.Err != nil:
			fmt.Printf("  %s  error: %v\n", up.WindowStart.Format(time.RFC3339), up.Err)
		default:
			fmt.Printf("  %s  %.4g Hz (sweet-spot poll every %v)\n",
				up.WindowStart.Format(time.RFC3339), up.Result.NyquistRate, roundInterval(up.SuggestedInterval))
		}
	}
	if n == 0 {
		return nyquist.ErrTooShort
	}
	return nil
}

// scanFleet audits a simulated datacenter with the concurrent scanner.
func scanFleet(pairs, workers int, seed int64, cutoff float64) {
	f, err := fleet.NewFleet(fleet.FleetConfig{Seed: seed, TotalPairs: pairs})
	if err != nil {
		fatal(err)
	}
	sc, err := fleet.NewScanner(fleet.ScanConfig{Workers: workers, EnergyCutoff: cutoff})
	if err != nil {
		fatal(err)
	}
	rep, err := sc.ScanAll(f)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.Render())
}

func largestGap(gaps []nyquist.Gap) time.Duration {
	var max time.Duration
	for _, g := range gaps {
		if g.Length() > max {
			max = g.Length()
		}
	}
	return max
}

// roundInterval rounds for display without collapsing sub-second
// suggestions to "0s".
func roundInterval(d time.Duration) time.Duration {
	switch {
	case d >= 10*time.Second:
		return d.Round(time.Second)
	case d >= time.Second:
		return d.Round(10 * time.Millisecond)
	default:
		return d.Round(time.Millisecond)
	}
}

func rateToInterval(rate float64) time.Duration {
	if rate <= 0 {
		return 0
	}
	return roundInterval(time.Duration(float64(time.Second) / rate))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nyquistscan:", err)
	os.Exit(1)
}
