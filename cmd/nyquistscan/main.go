// Command nyquistscan audits a monitoring trace: it reads timestamp,value
// CSV from a file or stdin, estimates the signal's Nyquist rate with the
// paper's method (§3.2), and reports how much the current collection rate
// could be reduced.
//
// Usage:
//
//	nyquistscan [-cutoff 0.99] [-welch] [-window 6h -step 5m] [file.csv]
//
// With -window the trace is additionally scanned with a moving window
// (Fig. 7 style) and the per-window rates are printed.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/fleet"
	"repro/internal/trace"
	"repro/nyquist"
)

func main() {
	var (
		cutoff  = flag.Float64("cutoff", nyquist.DefaultEnergyCutoff, "energy fraction cut-off")
		welch   = flag.Bool("welch", false, "use Welch averaging (noise-robust)")
		window  = flag.Duration("window", 0, "moving-window length (0 = whole trace only)")
		step    = flag.Duration("step", 5*time.Minute, "moving-window step")
		counter = flag.Bool("counter", false, "treat the trace as a cumulative counter (difference into a rate first)")
		linear  = flag.Bool("lineardetrend", false, "remove a least-squares line instead of the mean (robust for short windows)")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	name := "stdin"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
		name = flag.Arg(0)
	}
	s, err := trace.ReadCSV(in)
	if err != nil {
		fatal(err)
	}
	u, err := s.RegularizeAuto()
	if err != nil {
		fatal(fmt.Errorf("regularize: %w", err))
	}
	if *counter {
		u, err = fleet.RateFromCounter(u)
		if err != nil {
			fatal(fmt.Errorf("counter differencing: %w", err))
		}
		fmt.Println("counter mode: analyzing the differenced rate signal")
	}
	detrend := nyquist.DetrendMean
	if *linear {
		detrend = nyquist.DetrendLinear
	}
	est, err := nyquist.NewEstimator(nyquist.EstimatorConfig{EnergyCutoff: *cutoff, Welch: *welch, Detrend: detrend})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("trace: %s (%d samples, interval %v, rate %.4g Hz)\n",
		name, u.Len(), u.Interval, u.SampleRate())
	if gaps, err := s.Gaps(0); err == nil && len(gaps) > 0 {
		fmt.Printf("gaps: %d (largest %v) — filled by nearest-neighbour re-sampling\n",
			len(gaps), largestGap(gaps))
	}
	if q := nyquist.EstimateStep(u.Values); q > 0 {
		fmt.Printf("quantization step: %.4g\n", q)
	}

	res, err := est.Estimate(u)
	switch {
	case errors.Is(err, nyquist.ErrAliased):
		fmt.Println("verdict: ALIASED — the trace appears under-sampled; the Nyquist rate cannot be")
		fmt.Println("recovered from it (the paper records -1). Increase the collection rate and re-scan.")
	case err != nil:
		fatal(err)
	default:
		fmt.Printf("nyquist rate: %.4g Hz (cut-off frequency %.4g Hz, %.2f%% energy captured)\n",
			res.NyquistRate, res.CutoffFreq, 100*res.EnergyCaptured)
		fmt.Printf("possible reduction: %.1fx (sampling every %v would suffice)\n",
			res.ReductionRatio, rateToInterval(res.NyquistRate))
		if res.ReductionRatio < 1.2 {
			fmt.Println("note: the current rate is close to the requirement; keep it.")
		}
	}

	if *window > 0 {
		wins, err := est.MovingWindow(u, *window, *step)
		if err != nil {
			fatal(fmt.Errorf("moving window: %w", err))
		}
		fmt.Printf("\nmoving-window scan (%v window, %v step):\n", *window, *step)
		for _, w := range wins {
			switch {
			case errors.Is(w.Err, nyquist.ErrAliased):
				fmt.Printf("  %s  aliased\n", w.WindowStart.Format(time.RFC3339))
			case w.Err != nil:
				fmt.Printf("  %s  error: %v\n", w.WindowStart.Format(time.RFC3339), w.Err)
			default:
				fmt.Printf("  %s  %.4g Hz\n", w.WindowStart.Format(time.RFC3339), w.Result.NyquistRate)
			}
		}
	}
}

func largestGap(gaps []nyquist.Gap) time.Duration {
	var max time.Duration
	for _, g := range gaps {
		if g.Length() > max {
			max = g.Length()
		}
	}
	return max
}

func rateToInterval(rate float64) time.Duration {
	if rate <= 0 {
		return 0
	}
	return time.Duration(float64(time.Second) / rate).Round(time.Second)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nyquistscan:", err)
	os.Exit(1)
}
