// Command nyquistd is the Nyquist-aware ingest/query daemon: the
// monitoring toolkit turned into a network service. External pollers
// push batches of samples over HTTP; every series gets a live §3.2
// streaming estimate, clean estimates retune the sharded store's
// multi-resolution retention (the estimate→retain loop, closed across
// the wire), and raw history is held in Gorilla-compressed blocks so a
// serving node retains roughly an order of magnitude more points per
// byte than a []Point store would.
//
// Usage:
//
//	nyquistd [-addr :9464] [-shards 16] [-raw-capacity 4096]
//	         [-tier-capacity 1024] [-tiers 2] [-compress-block 128]
//	         [-window 256] [-emit-every 8] [-max-body 8388608]
//
// The daemon prints "nyquistd: listening on HOST:PORT" once the socket
// is bound (use -addr 127.0.0.1:0 to pick a free port: the printed line
// is machine-parseable, which is how the CI smoke job finds it), serves
// until SIGINT/SIGTERM, then drains in-flight requests and exits 0 with
// a final store report. See docs/API.md for the endpoints.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/monitor"
	"repro/internal/tsdb"
)

func main() {
	var (
		addr         = flag.String("addr", ":9464", "listen address (host:port; port 0 picks a free one)")
		shards       = flag.Int("shards", 16, "store shard count")
		rawCapacity  = flag.Int("raw-capacity", 4096, "per-series raw ring capacity in points (0 = unbounded)")
		tierCapacity = flag.Int("tier-capacity", 1024, "per-tier capacity in buckets")
		tiers        = flag.Int("tiers", 2, "downsampled retention tiers below the raw ring")
		compress     = flag.Int("compress-block", 128, "points per sealed Gorilla block (0 = uncompressed rings)")
		window       = flag.Int("window", 256, "per-series streaming-estimator window in samples")
		emitEvery    = flag.Int("emit-every", 8, "samples between estimate refreshes once a window is full")
		maxBody      = flag.Int64("max-body", 8<<20, "max ingest request body in bytes")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain budget")
	)
	flag.Parse()

	store := monitor.NewTieredStore(tsdb.Config{
		Shards: *shards,
		Retention: tsdb.RetentionConfig{
			RawCapacity:   *rawCapacity,
			TierCapacity:  *tierCapacity,
			Tiers:         *tiers,
			CompressBlock: *compress,
		},
	})
	srv := api.NewServer(api.Config{
		Store:        store,
		Ingest:       monitor.IngestConfig{WindowSamples: *window, EmitEvery: *emitEvery},
		MaxBodyBytes: *maxBody,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nyquistd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("nyquistd: listening on %s\n", ln.Addr())

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "nyquistd: serve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	fmt.Println("nyquistd: shutting down, draining in-flight requests")
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "nyquistd: shutdown: %v\n", err)
		os.Exit(1)
	}
	st := store.Stats()
	fmt.Printf("nyquistd: served %d appends across %d series; retained %d raw + %d buckets",
		st.Appends, st.Series, st.RawPoints, st.Buckets)
	if st.CompressedEntries > 0 {
		fmt.Printf("; %.2f bytes/point over %d sealed entries",
			float64(st.CompressedBytes)/float64(st.CompressedEntries), st.CompressedEntries)
	}
	fmt.Println()
}
