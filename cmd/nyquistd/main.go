// Command nyquistd is the Nyquist-aware ingest/query daemon: the
// monitoring toolkit turned into a network service. External pollers
// push batches of samples over HTTP; every series gets a live §3.2
// streaming estimate, clean estimates retune the sharded store's
// multi-resolution retention (the estimate→retain loop, closed across
// the wire), and raw history is held in Gorilla-compressed blocks so a
// serving node retains roughly an order of magnitude more points per
// byte than a []Point store would.
//
// With -data-dir the daemon is restart-safe: sealed blocks and
// estimator tuning state stream into a write-ahead log with batched
// fsync (-fsync-every is the durability window), a background compactor
// folds the log into block snapshots, and on boot the store and the
// estimators are rebuilt from snapshot + log — a SIGKILLed daemon comes
// back serving identical queries and estimates for everything that was
// synced. Without -data-dir it serves memory-only, as before.
//
// The daemon also observes itself: every subsystem reports into a
// metrics registry served at GET /metrics (Prometheus text format),
// requests carry IDs through structured logs (-log-level, -slow-query),
// and -self-scrape closes the loop by periodically ingesting the
// daemon's own metrics into its own store — the estimator then watches
// the monitor like any other signal. /healthz is pure liveness;
// /readyz flips to 200 only after WAL replay, so the listener can bind
// before recovery without exposing a half-rebuilt store.
//
// Usage:
//
//	nyquistd [-addr :9464] [-shards 16] [-raw-capacity 4096]
//	         [-tier-capacity 1024] [-tiers 2] [-compress-block 128]
//	         [-cache-bytes 33554432]
//	         [-window 256] [-emit-every 8] [-max-body 8388608]
//	         [-bulk-addr ADDR]
//	         [-max-series 1000000] [-evict-after -1]
//	         [-data-dir DIR] [-fsync-every 10ms] [-snapshot-every 60s]
//	         [-scrub-every 60s] [-self-scrape 0] [-debug-addr ADDR]
//	         [-log-level info] [-slow-query 1s]
//
// The daemon prints "nyquistd: listening on HOST:PORT" once the socket
// is bound (use -addr 127.0.0.1:0 to pick a free port: the printed line
// is machine-parseable, which is how the CI smoke job finds it), serves
// until SIGINT/SIGTERM, then drains in-flight requests, seals and
// commits the log tail (when durable) and exits 0 with a final store
// report. See docs/API.md for the endpoints.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only on -debug-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/monitor"
	"repro/internal/tsdb"
	"repro/internal/wal"
)

func main() {
	var (
		addr         = flag.String("addr", ":9464", "listen address (host:port; port 0 picks a free one)")
		shards       = flag.Int("shards", 16, "store shard count")
		rawCapacity  = flag.Int("raw-capacity", 4096, "per-series raw ring capacity in points (0 = unbounded)")
		tierCapacity = flag.Int("tier-capacity", 1024, "per-tier capacity in buckets")
		tiers        = flag.Int("tiers", 2, "downsampled retention tiers below the raw ring")
		compress     = flag.Int("compress-block", 128, "points per sealed Gorilla block (0 = uncompressed rings)")
		cacheBytes   = flag.Int64("cache-bytes", 32<<20, "decoded-block query cache budget in bytes, split across shards (0 = off; only used with -compress-block > 0)")
		window       = flag.Int("window", 256, "per-series streaming-estimator window in samples")
		emitEvery    = flag.Int("emit-every", 8, "samples between estimate refreshes once a window is full")
		maxSeries    = flag.Int("max-series", 1_000_000, "estimator series cap; new series beyond it are stored but not estimated (0 = unbounded)")
		evictAfter   = flag.Int("evict-after", -1, "observations of idleness before a capped-out estimator LRU-evicts an idle series (0 = never evict, negative = 4x max-series)")
		maxBody      = flag.Int64("max-body", 8<<20, "max ingest request body in bytes")
		bulkAddr     = flag.String("bulk-addr", "", "listen address for the plain-TCP length-prefixed bulk ingest lane (empty = off)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain budget")

		dataDir       = flag.String("data-dir", "", "durability directory for the WAL and snapshots (empty = memory-only)")
		fsyncEvery    = flag.Duration("fsync-every", 10*time.Millisecond, "WAL group-commit window (negative = fsync every append)")
		segmentBytes  = flag.Int64("segment-bytes", 64<<20, "WAL segment rotation size in bytes")
		snapshotEvery = flag.Duration("snapshot-every", 60*time.Second, "snapshot/compaction cadence (negative = never)")
		stateEvery    = flag.Duration("state-every", 15*time.Second, "estimator tuning-state record cadence (negative = only on shutdown/snapshot)")
		scrubEvery    = flag.Duration("scrub-every", 60*time.Second, "background CRC scrub cadence over sealed WAL segments and the newest snapshot (negative = never)")

		selfScrape = flag.Duration("self-scrape", 0, "interval for ingesting the daemon's own metrics into its own store (0 = off)")
		debugAddr  = flag.String("debug-addr", "", "listen address for net/http/pprof (empty = off)")
		logLevel   = flag.String("log-level", "info", "structured log level: debug, info, warn, error")
		slowQuery  = flag.Duration("slow-query", time.Second, "request latency that triggers a warn-level slow log (negative = off)")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "nyquistd: bad -log-level %q (want debug, info, warn or error)\n", *logLevel)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	if *dataDir != "" && *compress <= 0 {
		fmt.Fprintln(os.Stderr, "nyquistd: -data-dir requires -compress-block > 0 (the WAL persists sealed blocks)")
		os.Exit(2)
	}
	store := monitor.NewTieredStore(tsdb.Config{
		Shards: *shards,
		// The serving store is strict-append: a point the store refuses
		// (out of order, unrepresentable timestamp) is reported to the
		// client as rejected — and, when durable, never reaches the WAL.
		StrictAppend: true,
		CacheBytes:   *cacheBytes,
		Retention: tsdb.RetentionConfig{
			RawCapacity:   *rawCapacity,
			TierCapacity:  *tierCapacity,
			Tiers:         *tiers,
			CompressBlock: *compress,
		},
	})
	est := monitor.NewIngestEstimator(store, monitor.IngestConfig{
		WindowSamples: *window,
		EmitEvery:     *emitEvery,
		MaxSeries:     *maxSeries,
		EvictAfter:    *evictAfter,
	})

	srv := api.NewServer(api.Config{
		Store:        store,
		Estimator:    est,
		MaxBodyBytes: *maxBody,
		Logger:       logger,
		SlowQuery:    *slowQuery,
	})

	// Bind before WAL replay: probes and /metrics can watch a long
	// recovery, while the readiness gate keeps the data endpoints at
	// 503 until the store is whole.
	if *dataDir != "" {
		srv.SetReady(false)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nyquistd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("nyquistd: listening on %s\n", ln.Addr())

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	// The bulk lane binds alongside the HTTP listener; frames arriving
	// before WAL replay finishes draw the same not-ready error the HTTP
	// endpoints answer with 503.
	var bulkLn net.Listener
	if *bulkAddr != "" {
		bulkLn, err = net.Listen("tcp", *bulkAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nyquistd: bulk listen %s: %v\n", *bulkAddr, err)
			os.Exit(1)
		}
		fmt.Printf("nyquistd: bulk lane on %s\n", bulkLn.Addr())
		go func() {
			if err := srv.ServeBulk(bulkLn); err != nil {
				logger.Error("bulk listener failed", "addr", bulkLn.Addr(), "err", err)
			}
		}()
	}

	var durable *wal.Durable
	if *dataDir != "" {
		durable, err = wal.Open(*dataDir, store, est, wal.Options{
			FsyncEvery:    *fsyncEvery,
			SegmentBytes:  *segmentBytes,
			SnapshotEvery: *snapshotEvery,
			StateEvery:    *stateEvery,
			ScrubEvery:    *scrubEvery,
			SyncObserver:  srv.ObserveWALFsync,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "nyquistd: open data dir: %v\n", err)
			os.Exit(1)
		}
		srv.SetDurable(durable)
		srv.SetReady(true)
		ri := durable.Replay()
		fmt.Printf("nyquistd: recovered %s: %d series, %d replayed points across %d segments (snapshot=%v, torn_tail=%v) in %v\n",
			*dataDir, ri.Series, ri.Points, ri.Segments, ri.SnapshotLoaded, ri.TornTail, ri.Duration.Round(time.Millisecond))
	}

	var scraper *api.SelfScraper
	if *selfScrape > 0 {
		scraper = srv.NewSelfScraper(*selfScrape)
		scraper.Start()
		fmt.Printf("nyquistd: self-scrape every %v\n", *selfScrape)
	}
	if *debugAddr != "" {
		// pprof rides the DefaultServeMux on its own listener, so
		// profiling never shares a port with the data plane. Bind before
		// announcing so ":0" prints the port the kernel actually picked.
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nyquistd: debug listen %s: %v\n", *debugAddr, err)
			os.Exit(1)
		}
		go func() {
			if err := http.Serve(dln, nil); err != nil {
				logger.Error("debug listener failed", "addr", dln.Addr(), "err", err)
			}
		}()
		fmt.Printf("nyquistd: pprof on %s/debug/pprof/\n", dln.Addr())
	}

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "nyquistd: serve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	fmt.Println("nyquistd: shutting down, draining in-flight requests")
	if bulkLn != nil {
		// Stop admitting bulk frames before the HTTP drain; pushers see
		// the close as end-of-stream and reconnect elsewhere.
		bulkLn.Close()
	}
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "nyquistd: shutdown: %v\n", err)
		os.Exit(1)
	}
	if scraper != nil {
		// Stop before the WAL closes so the final self-samples still
		// ride the sealed tail.
		scraper.Stop()
	}
	if durable != nil {
		// Seal the active tails and commit the log so a graceful
		// restart loses nothing at all.
		if err := durable.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "nyquistd: wal close: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("nyquistd: WAL sealed and committed")
	}
	st := store.Stats()
	fmt.Printf("nyquistd: served %d appends across %d series; retained %d raw + %d buckets",
		st.Appends, st.Series, st.RawPoints, st.Buckets)
	if st.CompressedEntries > 0 {
		fmt.Printf("; %.2f bytes/point over %d sealed entries",
			float64(st.CompressedBytes)/float64(st.CompressedEntries), st.CompressedEntries)
	}
	fmt.Println()
}
