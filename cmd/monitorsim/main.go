// Command monitorsim runs the monitoring pipeline end to end: over a
// single simulated device (the static-versus-adaptive cost/quality
// comparison, the paper's thesis in miniature) or — with -scenario —
// over a whole workload regime driven by the closed-loop fleet
// controller: Scanner census, per-round streaming estimation, budgeted
// rate allocation, Nyquist-tuned storage retention.
//
// Usage:
//
//	monitorsim [-metric temperature] [-interval 30s] [-hours 24] [-seed 1] [-burst]
//	monitorsim -scenario diurnal [-devices 1000] [-rounds 0] [-budget 1] [-seed 1]
//	monitorsim -push http://127.0.0.1:9464 [-push-samples 1024] [-push-batch 256]
//	monitorsim -push-bulk 127.0.0.1:9465 [-push-samples 65536] [-push-batch 4096] [-push-min-rate 25000]
//	monitorsim -list-scenarios
//
// -push switches to load-generator mode against a running nyquistd: a
// synthetic known-Nyquist diurnal series is ingested over HTTP in
// batches, then the server's estimate endpoint is asserted to have
// converged near the ground truth and the query and stats endpoints are
// exercised — the CI server-smoke contract. The exit status is non-zero
// when the server's estimate misses the quality bar.
//
// -burst injects a link-flap-style transient a third of the way in, the
// §4.2 scenario that forces the adaptive poller to probe up and back
// down. -scenario selects a regime from the catalog (see
// -list-scenarios); -budget scales the fleet-wide sample budget as a
// fraction of the production rate (0 = the regime's default).
package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"repro/fleet"
	"repro/nyquist"
)

func main() {
	var (
		metricName = flag.String("metric", "temperature", "metric family (see -list)")
		interval   = flag.Duration("interval", 30*time.Second, "production (static) poll interval")
		hours      = flag.Float64("hours", 24, "simulated duration in hours")
		seed       = flag.Int64("seed", 1, "device seed")
		burst      = flag.Bool("burst", false, "inject a transient high-frequency event")
		list       = flag.Bool("list", false, "list metric families and exit")

		scenario  = flag.String("scenario", "", "run the closed-loop controller on this workload regime (see -list-scenarios)")
		devices   = flag.Int("devices", 0, "fleet size for -scenario (0 = the regime's default)")
		rounds    = flag.Int("rounds", 0, "max control rounds (0 = the regime's convergence bound)")
		budget    = flag.Float64("budget", 0, "fleet sample budget as a fraction of the production rate (0 = regime default)")
		listScens = flag.Bool("list-scenarios", false, "list the scenario catalog and exit")

		push         = flag.String("push", "", "load-generator mode: base URL of a running nyquistd to drive")
		pushSamples  = flag.Int("push-samples", 1024, "samples to ingest in -push mode")
		pushBatch    = flag.Int("push-batch", 256, "lines per ingest batch in -push mode")
		pushSeries   = flag.String("push-series", "sim/diurnal/gauge", "series id used in -push mode")
		pushScenario = flag.String("push-scenario", "", "with -push: replay a catalog regime's wire traffic against the server (see -list-scenarios)")
		pushBegin    = flag.Int("push-begin", 0, "first wire round to send in -push-scenario mode (earlier rounds are skipped, not sent)")
		pushEnd      = flag.Int("push-end", 0, "one past the last wire round to send (0 = the regime's round bound)")

		pushBulk    = flag.String("push-bulk", "", "load-generator mode: host:port of a nyquistd bulk lane (-bulk-addr) to drive over plain TCP")
		pushMinRate = flag.Float64("push-min-rate", 0, "with -push-bulk: fail unless the achieved ingest rate reaches this many points/s (0 = no floor)")
	)
	flag.Parse()

	if *list {
		for _, m := range fleet.AllMetrics() {
			p := fleet.ProfileFor(m)
			fmt.Printf("%-20s %-8s nyquist %.3g..%.3g Hz\n", key(p.Name), p.Unit, p.NyquistLo, p.NyquistHi)
		}
		return
	}
	if *listScens {
		for _, sp := range fleet.Scenarios() {
			tag := ""
			if sp.Hostile {
				tag = " [hostile wire]"
			}
			fmt.Printf("%-12s %s (default %d devices, <=%d rounds, quality bar %.0f%% of swing)%s\n",
				sp.Name, sp.Description, sp.DefaultDevices, sp.MaxRounds, 100*sp.QualityBar, tag)
		}
		return
	}
	if *push != "" {
		if *pushScenario != "" {
			runPushScenario(*push, *pushScenario, *seed, *devices, *pushBegin, *pushEnd, *pushBatch)
			return
		}
		runPush(*push, *pushSeries, *pushSamples, *pushBatch)
		return
	}
	if *pushBulk != "" {
		runPushBulk(*pushBulk, *pushSamples, *pushBatch, *pushMinRate)
		return
	}
	if *scenario != "" {
		runScenario(*scenario, *seed, *devices, *rounds, *budget)
		return
	}
	if *pushScenario != "" {
		fatal(fmt.Errorf("-push-scenario needs -push URL (a running nyquistd to drive)"))
	}

	metric, ok := findMetric(*metricName)
	if !ok {
		fmt.Fprintf(os.Stderr, "monitorsim: unknown metric %q (try -list)\n", *metricName)
		os.Exit(2)
	}
	p := fleet.ProfileFor(metric)
	rng := rand.New(rand.NewSource(*seed))
	// Band limit in the middle of the metric's log range.
	bandLimit := p.NyquistLo / 2 * math.Pow(p.NyquistHi/p.NyquistLo, 0.6)
	dev, err := fleet.NewDevice("sim/"+key(p.Name), metric, bandLimit, *interval, rng, uint64(*seed))
	if err != nil {
		fatal(err)
	}
	dur := time.Duration(*hours * float64(time.Hour))
	if *burst {
		dev.AddBurst(fleet.Burst{
			Start:    dur.Seconds() / 3,
			Duration: dur.Seconds() / 6,
			Freq:     50 * dev.TrueNyquist,
			Amp:      3 * p.Swing,
		})
	}

	fmt.Printf("device: %s (true Nyquist rate %.3g Hz, %s quantum %.3g)\n",
		dev.ID, dev.TrueNyquist, p.Unit, p.QuantStep)
	fmt.Printf("static poll interval: %v over %v\n\n", *interval, dur)

	staticRate := 1 / interval.Seconds()
	cmp, err := fleet.Compare(dev, 0, dur, fleet.CompareConfig{
		StaticInterval: *interval,
		Adaptive: nyquist.AdaptiveConfig{
			InitialRate:   staticRate / 10,
			MaxRate:       staticRate,
			EpochDuration: dur.Seconds() / 12,
			DecreaseAfter: 2,
			Estimator:     nyquist.EstimatorConfig{EnergyCutoff: 0.90},
		},
		ReferenceRate: staticRate,
		QuantStep:     p.QuantStep,
		Model:         fleet.DefaultCostModel(),
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("static:    %s\n", cmp.StaticCost)
	fmt.Printf("adaptive:  %s (converged at %.3g Hz)\n", cmp.AdaptiveCost, cmp.FinalRate)
	fmt.Printf("\ncost reduction:       %.1fx\n", cmp.CostReduction)
	fmt.Printf("reconstruction NRMSE: %.4f (max error %.3g %s)\n",
		cmp.Fidelity.NRMSE, cmp.Fidelity.MaxAbs, p.Unit)
	if cmp.CostReduction > 1 {
		fmt.Printf("\nThe production rate can be cut %.0fx with near-lossless reconstruction.\n", cmp.CostReduction)
	} else {
		fmt.Println("\nThe production rate is near (or below) the requirement; adaptation cannot cut it.")
	}

	reportStorage(dev, *interval, dur)
}

// runScenario drives the closed-loop controller over a catalog regime:
// census the fleet with the concurrent scanner, then iterate the
// estimate → budgeted poll rate → retention loop until rates converge.
// Hostile regimes attack the ingest wire rather than the control loop,
// so they run through the in-process ingest harness instead.
func runScenario(name string, seed int64, devices, rounds int, budgetFrac float64) {
	sc, err := fleet.BuildScenario(name, seed, devices)
	if err != nil {
		fatal(err)
	}
	if sc.Spec.Hostile {
		rep, err := fleet.RunHostile(sc, fleet.HostileConfig{Rounds: rounds})
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep.Render())
		return
	}
	prod := 0.0
	for _, d := range sc.Fleet.Devices {
		prod += d.PollRate()
	}
	if budgetFrac <= 0 {
		budgetFrac = sc.Spec.BudgetFraction
	}
	ctl, err := fleet.NewController(sc, fleet.ControllerConfig{
		BudgetHz:    prod * budgetFrac,
		InitialScan: true,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("scenario %q: %s\n", sc.Spec.Name, sc.Spec.Description)
	fmt.Printf("fleet: %d devices at %.4g Hz production, budget %.4g Hz (%.2gx production)\n\n",
		len(sc.Fleet.Devices), prod, prod*budgetFrac, budgetFrac)
	fmt.Println("scanner census (production rates):")
	fmt.Print(ctl.CensusReport().Render())
	rep, err := ctl.Run(rounds)
	if err != nil {
		fatal(err)
	}
	fmt.Println()
	fmt.Print(rep.Render())
}

// runPush is the nyquistd load generator: ingest a synthetic
// known-Nyquist diurnal gauge over HTTP, then hold the server's
// estimate to the ground truth — the paper's estimate→retain loop
// checked across a real network boundary.
//
// The signal is the serving test workload: the diurnal fundamental plus
// a 4x harmonic (true Nyquist 8 cycles/day), polled every 675 s (128
// polls/day, 16x oversampled) and quantized to a quarter unit, so the
// daemon's default 256-sample window holds exactly two days and both
// tones sit on analysis bins.
func runPush(baseURL, id string, samples, batch int) {
	const (
		f0      = 1.0 / 86400
		nyquist = 2 * 4 * f0
		step    = 675 * time.Second
	)
	if samples < 512 {
		samples = 512 // below two windows the convergence check is meaningless
	}
	if batch < 1 {
		batch = 256
	}
	start := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	value := func(i int) float64 {
		ts := float64(i) * step.Seconds()
		v := 40 + 8*math.Sin(2*math.Pi*f0*ts) + 6.4*math.Sin(2*math.Pi*4*f0*ts+1)
		return math.Round(v*4) / 4
	}
	client := &http.Client{Timeout: 30 * time.Second}
	fmt.Printf("push: driving %s with %d samples of %q (true Nyquist %.6g Hz, %v polls)\n",
		baseURL, samples, id, nyquist, step)
	var sb strings.Builder
	sent := 0
	flush := func() {
		if sb.Len() == 0 {
			return
		}
		resp, err := client.Post(baseURL+"/api/v1/ingest", "application/x-ndjson", strings.NewReader(sb.String()))
		if err != nil {
			fatal(err)
		}
		var out struct {
			Accepted int `json:"accepted"`
			Rejected int `json:"rejected"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			fatal(fmt.Errorf("push: decode ingest response: %w", err))
		}
		if resp.StatusCode != http.StatusOK || out.Rejected != 0 {
			fatal(fmt.Errorf("push: ingest batch failed: HTTP %d, %d rejected", resp.StatusCode, out.Rejected))
		}
		sent += out.Accepted
		sb.Reset()
	}
	for i := 0; i < samples; i++ {
		fmt.Fprintf(&sb, "{\"series\":%q,\"ts\":%d,\"value\":%.2f}\n",
			id, start.Add(time.Duration(i)*step).Unix(), value(i))
		if (i+1)%batch == 0 {
			flush()
		}
	}
	flush()
	fmt.Printf("push: ingested %d points in batches of %d\n", sent, batch)

	var est struct {
		Warm            bool    `json:"warm"`
		Aliased         bool    `json:"aliased"`
		NyquistHz       float64 `json:"nyquist_hz"`
		RetentionHz     float64 `json:"retention_nyquist_hz"`
		IntervalSeconds float64 `json:"interval_seconds"`
		Samples         int64   `json:"samples"`
	}
	getJSON(client, baseURL+"/api/v1/estimate?series="+url.QueryEscape(id), &est)
	fmt.Printf("push: server estimate %.6g Hz (truth %.6g Hz), interval %.0f s, warm=%v aliased=%v retention=%.6g Hz\n",
		est.NyquistHz, nyquist, est.IntervalSeconds, est.Warm, est.Aliased, est.RetentionHz)
	if !est.Warm {
		fatal(fmt.Errorf("push: estimate not warm after %d samples", sent))
	}
	if est.Aliased {
		fatal(fmt.Errorf("push: clean diurnal series flagged aliased"))
	}
	// The diurnal regime's reconstruction quality bar is 35%% of swing;
	// hold the rate estimate itself to a tighter 25%% relative band.
	if rel := math.Abs(est.NyquistHz-nyquist) / nyquist; rel > 0.25 {
		fatal(fmt.Errorf("push: estimate %.6g Hz misses ground truth %.6g Hz by %.0f%%", est.NyquistHz, nyquist, 100*rel))
	}
	if est.RetentionHz == 0 {
		fatal(fmt.Errorf("push: retention was never retuned from the ingest estimates"))
	}

	var q struct {
		Points  []struct{ TS string } `json:"points"`
		Thinned bool                  `json:"thinned"`
	}
	from := start.Add(time.Duration(samples*3/4) * step).Format(time.RFC3339)
	getJSON(client, baseURL+"/api/v1/query?series="+url.QueryEscape(id)+"&from="+url.QueryEscape(from)+"&max_points=100", &q)
	if len(q.Points) == 0 {
		fatal(fmt.Errorf("push: recent-window query returned nothing"))
	}
	var st struct {
		Appends       int64   `json:"appends"`
		BytesPerPoint float64 `json:"bytes_per_point"`
	}
	getJSON(client, baseURL+"/api/v1/stats", &st)
	fmt.Printf("push: query returned %d points (thinned=%v); store holds %d appends at %.2f bytes/point\n",
		len(q.Points), q.Thinned, st.Appends, st.BytesPerPoint)
	fmt.Println("push: PASS — estimate converged near ground truth across the HTTP boundary")
}

// runPushBulk drives a nyquistd bulk lane (see docs/API.md "Bulk lane"):
// length-prefixed JSON-lines frames over one plain-TCP connection,
// spread across 16 series, with per-frame response accounting held to
// the ingest contract (every sent line accepted). Timestamps ascend from
// a recent wall-clock base so repeated runs against the same strict-
// append server keep landing. With -push-min-rate the achieved rate is a
// hard floor — the CI smoke job's regression tripwire for the bulk path.
func runPushBulk(addr string, samples, batch int, minRate float64) {
	const nSeries = 16
	if samples < 1 {
		samples = 1
	}
	if batch < 1 {
		batch = 4096
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		fatal(fmt.Errorf("push-bulk: dial %s: %w", addr, err))
	}
	defer conn.Close()
	start := time.Now().Add(-time.Duration(samples/nSeries+1) * time.Second).Truncate(time.Second)
	var (
		buf                bytes.Buffer
		hdr                [4]byte
		accepted, rejected int
		frames             int
	)
	sendFrame := func() {
		if buf.Len() == 0 {
			return
		}
		binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
		if _, err := conn.Write(hdr[:]); err != nil {
			fatal(fmt.Errorf("push-bulk: write frame header: %w", err))
		}
		if _, err := conn.Write(buf.Bytes()); err != nil {
			fatal(fmt.Errorf("push-bulk: write frame: %w", err))
		}
		buf.Reset()
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			fatal(fmt.Errorf("push-bulk: read response header: %w", err))
		}
		body := make([]byte, binary.BigEndian.Uint32(hdr[:]))
		if _, err := io.ReadFull(conn, body); err != nil {
			fatal(fmt.Errorf("push-bulk: read response: %w", err))
		}
		var out struct {
			Accepted int    `json:"accepted"`
			Rejected int    `json:"rejected"`
			Error    string `json:"error"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			fatal(fmt.Errorf("push-bulk: decode response: %w", err))
		}
		if out.Error != "" {
			fatal(fmt.Errorf("push-bulk: server error: %s", out.Error))
		}
		accepted += out.Accepted
		rejected += out.Rejected
		frames++
	}
	fmt.Printf("push-bulk: driving %s with %d samples across %d series, %d lines per frame\n",
		addr, samples, nSeries, batch)
	t0 := time.Now()
	for i := 0; i < samples; i++ {
		ts := start.Add(time.Duration(i/nSeries) * time.Second)
		v := 40 + 8*math.Sin(2*math.Pi*float64(i)/4096)
		fmt.Fprintf(&buf, "{\"series\":\"bulk/dev%02d/metric\",\"ts\":%d,\"value\":%.3f}\n",
			i%nSeries, ts.Unix(), v)
		if (i+1)%batch == 0 {
			sendFrame()
		}
	}
	sendFrame()
	elapsed := time.Since(t0)
	rate := float64(accepted) / elapsed.Seconds()
	fmt.Printf("push-bulk: %d frames, accepted=%d rejected=%d in %v (%.0f points/s)\n",
		frames, accepted, rejected, elapsed.Round(time.Millisecond), rate)
	if accepted+rejected != samples {
		fatal(fmt.Errorf("push-bulk: sent %d lines, server accounted %d", samples, accepted+rejected))
	}
	if rejected != 0 {
		fatal(fmt.Errorf("push-bulk: %d lines rejected (expected a clean ascending stream)", rejected))
	}
	if minRate > 0 && rate < minRate {
		fatal(fmt.Errorf("push-bulk: %.0f points/s is below the -push-min-rate floor of %.0f", rate, minRate))
	}
	fmt.Println("push-bulk: PASS — bulk lane accounting matches and the rate floor held")
}

// runPushScenario replays a catalog regime's wire traffic against a
// running nyquistd: the same deterministic WireGen stream the golden
// reports pin, shipped over HTTP. Rounds [0, begin) are generated and
// discarded (so a restarted client resumes mid-scenario with churn
// epochs, skew state and backfill queues intact) and rounds [begin, end)
// are sent. Unlike -push, rejected lines are not fatal — hostile regimes
// exist to make the server reject truthfully — and a fully-rejected
// batch (HTTP 400, e.g. a crash-recovery duplicate replay) is part of
// the contract. The summary lines are machine-parseable; the chaos
// harness greps them.
func runPushScenario(baseURL, name string, seed int64, devices, begin, end, batch int) {
	sc, err := fleet.BuildScenario(name, seed, devices)
	if err != nil {
		fatal(err)
	}
	if end <= 0 {
		end = sc.Spec.MaxRounds
	}
	if begin < 0 || begin > end {
		fatal(fmt.Errorf("push-scenario: bad round range [%d, %d)", begin, end))
	}
	if batch < 1 {
		batch = 256
	}
	g := fleet.NewWireGen(sc, fleet.WireConfig{})
	g.SkipRounds(begin)

	client := &http.Client{Timeout: 30 * time.Second}
	var emitted, late, accepted, rejected, estDropped int
	var sb strings.Builder
	pending := 0
	flush := func() {
		if pending == 0 {
			return
		}
		resp, err := client.Post(baseURL+"/api/v1/ingest", "application/x-ndjson", strings.NewReader(sb.String()))
		if err != nil {
			fatal(err)
		}
		var out struct {
			Accepted         int `json:"accepted"`
			Rejected         int `json:"rejected"`
			EstimatorDropped int `json:"estimator_dropped"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			fatal(fmt.Errorf("push-scenario: decode ingest response: %w", err))
		}
		// 400 = every line rejected: legitimate under hostile traffic.
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusBadRequest {
			fatal(fmt.Errorf("push-scenario: ingest batch failed: HTTP %d", resp.StatusCode))
		}
		if out.Accepted+out.Rejected != pending {
			fatal(fmt.Errorf("push-scenario: sent %d lines, server accounted %d accepted + %d rejected",
				pending, out.Accepted, out.Rejected))
		}
		accepted += out.Accepted
		rejected += out.Rejected
		estDropped += out.EstimatorDropped
		sb.Reset()
		pending = 0
	}
	fmt.Printf("push-scenario: regime=%s seed=%d devices=%d rounds=[%d,%d) -> %s\n",
		sc.Spec.Name, sc.Seed, len(sc.Fleet.Devices), begin, end, baseURL)
	for r := begin; r < end; r++ {
		for _, ws := range g.Round() {
			emitted++
			if ws.Late {
				late++
			}
			fmt.Fprintf(&sb, "{\"series\":%q,\"ts\":%q,\"value\":%g}\n",
				ws.ID, ws.Time.UTC().Format(time.RFC3339Nano), ws.Value)
			if pending++; pending >= batch {
				flush()
			}
		}
		flush()
		fmt.Printf("push-scenario: round %d done: emitted=%d accepted=%d rejected=%d\n", r+1, emitted, accepted, rejected)
	}
	fmt.Printf("push-scenario: totals emitted=%d late=%d accepted=%d rejected=%d estimator_dropped=%d\n",
		emitted, late, accepted, rejected, estDropped)
	// The probe series anchors external recovery checks: a device whose
	// wire id never churns, with its ground truth.
	probe := sc.Fleet.Devices[0]
	fmt.Printf("push-scenario: probe-series %s true-nyquist %.9g\n", probe.ID, probe.TrueNyquist)
}

// getJSON fetches url into out, failing the run on transport, status or
// decode errors.
func getJSON(client *http.Client, url string, out any) {
	resp, err := client.Get(url)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode))
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		fatal(fmt.Errorf("GET %s: decode: %w", url, err))
	}
}

// reportStorage runs the production polls once more through the sharded
// multi-resolution store with a riding stream estimator retuning the
// retention tiers (the estimate→retain loop), then prints the operator's
// retention and query view of the storage leg.
func reportStorage(dev *fleet.Device, interval time.Duration, dur time.Duration) {
	n := int(dur.Seconds() / interval.Seconds())
	if n < 256 {
		return // too short a run for a meaningful retention story
	}
	store := fleet.NewTieredStore(fleet.StoreConfig{
		Retention: fleet.RetentionConfig{RawCapacity: n / 8, TierCapacity: n / 16},
	})
	stream, err := nyquist.NewStreamEstimator(nyquist.StreamConfig{
		Interval:      interval,
		WindowSamples: 256,
		EmitEvery:     64,
	})
	if err != nil {
		fatal(err)
	}
	start := time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)
	poller := &fleet.StaticPoller{ID: dev.ID, Target: dev, Interval: interval, Model: fleet.DefaultCostModel(), Stream: stream}
	if _, err := poller.Run(store, start, 0, dur); err != nil {
		fatal(err)
	}

	st := store.Stats()
	fmt.Printf("\nstorage leg (tsdb, %d-point raw ring):\n", n/8)
	fmt.Printf("  %d writes -> %d retained (%d compacted into tiers, %d dropped)\n",
		st.Appends, st.Retained(), st.Compacted, st.Dropped)
	for _, s := range store.Snapshot() {
		if s.NyquistRate > 0 {
			fmt.Printf("  retention tuned to %.4g Hz by the riding estimator\n", s.NyquistRate)
		}
		for i, t := range s.Tiers {
			if t.Buckets == 0 {
				continue
			}
			fmt.Printf("  tier %d: %4d buckets @ %v (%d samples summarized)\n",
				i+1, t.Buckets, t.Width, t.Samples)
		}
	}
	res, err := store.QueryRange(dev.ID, start, start.Add(dur), 24)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  query full run (budget 24): %d points, thinned=%v, tiers:", len(res.Points), res.Thinned)
	for _, ts := range res.Tiers {
		fmt.Printf(" [%d: %d pts]", ts.Tier, ts.Points)
	}
	fmt.Println()
}

func findMetric(name string) (fleet.Metric, bool) {
	want := key(name)
	for _, m := range fleet.AllMetrics() {
		if key(m.String()) == want {
			return m, true
		}
	}
	return 0, false
}

// key normalizes a metric name for matching: lower case, alphanumerics
// only.
func key(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			b.WriteRune(r)
		}
	}
	return b.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "monitorsim:", err)
	os.Exit(1)
}
