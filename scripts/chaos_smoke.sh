#!/usr/bin/env bash
# chaos_smoke.sh — the CI chaos harness: a live nyquistd under a hostile
# wire regime, killed mid-scenario and restarted.
#
# monitorsim's -push-scenario mode replays the deterministic backfill
# regime (the same WireGen stream the golden reports pin) against a
# durable daemon. Halfway through the scenario the daemon is SIGKILLed —
# no drain, no seal — restarted on the same data dir, and the PR 5
# recovery bars are asserted under hostile traffic:
#
#   - queries for synced data are byte-identical (the recovered points
#     are an exact prefix of the pre-crash answer; only the unsealed,
#     unsynced tail may be missing),
#   - the probe series' estimate survives the crash,
#   - rejection accounting stays truthful across the restart: a
#     duplicate replay of already-ingested rounds is fully rejected, and
#     the scenario's remaining rounds land with exact
#     accepted+rejected=emitted accounting,
#   - the background CRC scrub has run against the recovered WAL,
#   - the self-scrape view survives the crash: nyquistd_* series the
#     daemon ingested about itself recover from the WAL like any tenant
#     series (pre-crash samples present after restart, not merely
#     recreated by the restarted loop),
#
# then the daemon must still shut down gracefully (WAL sealed).
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/nyquistd" ./cmd/nyquistd
go build -o "$workdir/monitorsim" ./cmd/monitorsim

# wait_port LOGFILE: echoes the port once the daemon reports it.
wait_port() {
    local log=$1 port=""
    for _ in $(seq 1 100); do
        port=$(sed -n 's/.*listening on .*:\([0-9]*\)$/\1/p' "$log" | head -1)
        [ -n "$port" ] && { echo "$port"; return 0; }
        sleep 0.1
    done
    echo "chaos_smoke: nyquistd never reported its port" >&2
    cat "$log" >&2
    return 1
}

# start_daemon LOGFILE ARGS...: starts nyquistd with a bind retry (a
# stale port or slow teardown must not flake the job); sets $daemon and
# $port.
start_daemon() {
    local log=$1 attempt
    shift
    for attempt in 1 2 3; do
        "$workdir/nyquistd" "$@" >"$log" 2>&1 &
        daemon=$!
        if port=$(wait_port "$log"); then
            return 0
        fi
        kill "$daemon" 2>/dev/null || true
        wait "$daemon" 2>/dev/null || true
        echo "chaos_smoke: start attempt $attempt failed, retrying" >&2
    done
    echo "chaos_smoke: nyquistd failed to start after 3 attempts" >&2
    cat "$log" >&2
    return 1
}

# The scenario: backfill at 8 devices, seed 7 — a quarter of the wire
# arrives out of order, so the strict-append store must reject
# truthfully while everything else lands. The window is the hostile
# harness' 64 samples so estimates warm up within the pushed rounds.
regime=backfill
seed=7
devices=8
datadir="$workdir/data"
dflags=(-addr 127.0.0.1:0 -data-dir "$datadir" -window 64 -compress-block 32
    -fsync-every 2ms -state-every 100ms -snapshot-every=-1s -scrub-every 200ms
    -self-scrape 50ms)

# wait_ready PORT: the listener binds before WAL replay; data endpoints
# 503 until /readyz flips.
wait_ready() {
    local p=$1
    for _ in $(seq 1 100); do
        curl -sf "http://127.0.0.1:$p/readyz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "chaos_smoke: nyquistd never became ready" >&2
    return 1
}

start_daemon "$workdir/chaos1.log" "${dflags[@]}"
wait_ready "$port"
echo "chaos_smoke: nyquistd up on port $port (data dir $datadir)"

# Phase A: the first half of the scenario, rounds [0,3).
"$workdir/monitorsim" -push "http://127.0.0.1:$port" -push-scenario "$regime" \
    -seed "$seed" -devices "$devices" -push-begin 0 -push-end 3 | tee "$workdir/phaseA.log"
probe=$(sed -n 's/^push-scenario: probe-series \([^ ]*\) .*/\1/p' "$workdir/phaseA.log")
[ -n "$probe" ] || { echo "chaos_smoke: no probe series in push output" >&2; exit 1; }

# Let the group commit and a state sweep land, then capture the
# pre-crash answers for the probe series.
sleep 0.5
q() { curl -sfG "http://127.0.0.1:$1/api/v1/query" --data-urlencode "series=$probe" --data-urlencode "max_points=100000"; }
est() { curl -sfG "http://127.0.0.1:$1/api/v1/estimate" --data-urlencode "series=$probe"; }
q "$port" >"$workdir/query_before.json"
est "$port" >"$workdir/est_before.json"

# Self-scrape durability setup: at -self-scrape 50ms and -compress-block
# 32 a nyquistd_up block seals (and hits the WAL) after ~1.6s of
# scraping. Wait for enough self-samples that at least one sealed block
# is on disk, then pin the first pre-crash timestamp.
selfq() { curl -sfG "http://127.0.0.1:$1/api/v1/query" --data-urlencode "series=nyquistd_up" --data-urlencode "max_points=100000"; }
self_n=0
for _ in $(seq 1 150); do
    self_n=$(selfq "$port" 2>/dev/null | grep -o '"value":' | wc -l) || self_n=0
    [ "${self_n:-0}" -ge 40 ] && break
    sleep 0.1
done
[ "${self_n:-0}" -ge 40 ] || { echo "chaos_smoke: self-scrape produced only ${self_n:-0} samples" >&2; exit 1; }
selfq "$port" >"$workdir/self_before.json"
self_first_ts=$(sed -n 's/.*"points":\[{"ts":"\([^"]*\)".*/\1/p' "$workdir/self_before.json")
[ -n "$self_first_ts" ] || { echo "chaos_smoke: no first timestamp in the self-view" >&2; exit 1; }

kill -KILL "$daemon"
wait "$daemon" 2>/dev/null || true
echo "chaos_smoke: SIGKILLed mid-scenario (after round 3 of 6)"

start_daemon "$workdir/chaos2.log" "${dflags[@]}"
wait_ready "$port"
grep -q "recovered $datadir" "$workdir/chaos2.log" || {
    echo "chaos_smoke: no recovery line after restart" >&2
    cat "$workdir/chaos2.log" >&2
    exit 1
}
echo "chaos_smoke: restarted on port $port: $(grep 'recovered' "$workdir/chaos2.log")"

# Bar 1: synced data is byte-identical — the recovered points array is
# an exact prefix of the pre-crash one (the crash may only have cost the
# unsealed, unsynced tail).
q "$port" >"$workdir/query_after.json"
pts() { sed -n 's/.*"points":\[\([^]]*\)\].*/\1/p' "$1"; }
before_pts=$(pts "$workdir/query_before.json")
after_pts=$(pts "$workdir/query_after.json")
[ -n "$after_pts" ] || { echo "chaos_smoke: probe series lost across the crash" >&2; exit 1; }
case "$before_pts" in
"$after_pts"*) ;;
*)
    echo "chaos_smoke: recovered points are not a prefix of the pre-crash answer" >&2
    diff <(echo "$before_pts" | head -c 2000) <(echo "$after_pts" | head -c 2000) >&2 || true
    exit 1
    ;;
esac
echo "chaos_smoke: recovered queries are an exact prefix of the pre-crash answer"

# Bar 2: the probe series' estimate survived the crash.
est "$port" >"$workdir/est_after.json"
nyq() { sed -n 's/.*"nyquist_hz":\([0-9.e+-]*\).*/\1/p' "$1"; }
before=$(nyq "$workdir/est_before.json")
after=$(nyq "$workdir/est_after.json")
awk -v a="$before" -v b="$after" 'BEGIN {
    if (a <= 0 || b <= 0) { print "chaos_smoke: missing nyquist_hz (before=" a ", after=" b ")"; exit 1 }
    rel = (a > b ? a - b : b - a) / a
    if (rel > 0.25) { print "chaos_smoke: estimate lost across restart: " a " -> " b; exit 1 }
}' || exit 1
echo "chaos_smoke: estimate survived the crash ($before Hz -> $after Hz)"

# Bar 3a: a duplicate replay of rounds [0,2) — all behind data the store
# already recovered — must be rejected in full, not silently re-landed.
"$workdir/monitorsim" -push "http://127.0.0.1:$port" -push-scenario "$regime" \
    -seed "$seed" -devices "$devices" -push-begin 0 -push-end 2 | tee "$workdir/phaseB.log"
totals() { sed -n 's/^push-scenario: totals //p' "$1"; }
read -r b_emitted b_accepted b_rejected < <(totals "$workdir/phaseB.log" |
    sed 's/.*emitted=\([0-9]*\).*accepted=\([0-9]*\) rejected=\([0-9]*\).*/\1 \2 \3/')
if [ "$b_accepted" -ne 0 ] || [ "$b_rejected" -ne "$b_emitted" ]; then
    echo "chaos_smoke: duplicate replay accounting: emitted=$b_emitted accepted=$b_accepted rejected=$b_rejected, want 0 accepted" >&2
    exit 1
fi
echo "chaos_smoke: duplicate replay fully rejected ($b_rejected of $b_emitted)"

# Bar 3b: the scenario's remaining rounds [3,6) land with truthful
# accounting — fresh points accepted, the regime's late backfill
# rejected, and nothing unaccounted for.
"$workdir/monitorsim" -push "http://127.0.0.1:$port" -push-scenario "$regime" \
    -seed "$seed" -devices "$devices" -push-begin 3 -push-end 6 | tee "$workdir/phaseC.log"
read -r c_emitted c_accepted c_rejected < <(totals "$workdir/phaseC.log" |
    sed 's/.*emitted=\([0-9]*\).*accepted=\([0-9]*\) rejected=\([0-9]*\).*/\1 \2 \3/')
if [ "$c_accepted" -eq 0 ] || [ "$c_rejected" -eq 0 ] || [ $((c_accepted + c_rejected)) -ne "$c_emitted" ]; then
    echo "chaos_smoke: post-restart accounting: emitted=$c_emitted accepted=$c_accepted rejected=$c_rejected" >&2
    exit 1
fi
echo "chaos_smoke: scenario completed after restart (accepted=$c_accepted rejected=$c_rejected of $c_emitted)"

# Bar 4: the background CRC scrub is live against the recovered WAL.
sleep 0.5
curl -sf "http://127.0.0.1:$port/api/v1/stats" >"$workdir/stats_after.json"
grep -q '"scrub_runs":[1-9]' "$workdir/stats_after.json" || {
    echo "chaos_smoke: background scrub never ran" >&2
    cat "$workdir/stats_after.json" >&2
    exit 1
}
grep -q '"scrub_corrupt":0' "$workdir/stats_after.json" || {
    echo "chaos_smoke: scrub found corruption in a healthy WAL" >&2
    cat "$workdir/stats_after.json" >&2
    exit 1
}
echo "chaos_smoke: background scrub clean"

# Bar 5: the self-view survived the SIGKILL. The restarted daemon's own
# loop recreates nyquistd_up within 50ms, so mere existence proves
# nothing — the pre-crash first timestamp must be present, which only
# WAL replay of the sealed self-scrape blocks can produce.
selfq "$port" >"$workdir/self_after.json"
grep -qF "\"ts\":\"$self_first_ts\"" "$workdir/self_after.json" || {
    echo "chaos_smoke: pre-crash self-scrape sample ($self_first_ts) missing after restart" >&2
    head -c 1000 "$workdir/self_after.json" >&2
    exit 1
}
self_recovered=$(grep -o '"value":' "$workdir/self_after.json" | wc -l)
[ "$self_recovered" -ge 32 ] || {
    echo "chaos_smoke: only $self_recovered self-scrape samples after restart, want >= one sealed block (32)" >&2
    exit 1
}
echo "chaos_smoke: self-scrape view survived the crash ($self_recovered nyquistd_up samples, first at $self_first_ts)"

kill -TERM "$daemon"
rc=0
wait "$daemon" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "chaos_smoke: nyquistd exited $rc on SIGTERM, want a clean 0" >&2
    cat "$workdir/chaos2.log" >&2
    exit 1
fi
grep -q "WAL sealed and committed" "$workdir/chaos2.log" || {
    echo "chaos_smoke: no WAL-seal line on graceful shutdown" >&2
    cat "$workdir/chaos2.log" >&2
    exit 1
}
echo "chaos_smoke: PASS (crash mid-hostile-scenario, truthful recovery)"
