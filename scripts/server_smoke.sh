#!/usr/bin/env bash
# server_smoke.sh — the CI serving-path smoke test.
#
# Phase 1 (memory-only): builds the real binaries, starts nyquistd on a
# random port, drives it with monitorsim's load-generator mode (a
# synthetic known-Nyquist diurnal series over HTTP; the generator itself
# asserts the estimate endpoint converges near ground truth), then sends
# SIGTERM and requires a clean graceful shutdown (exit 0 with a final
# store report).
#
# Phase 2 (durability): starts nyquistd with -data-dir, pushes the same
# load, SIGKILLs the daemon — no drain, no seal, the real crash — then
# restarts it on the same data dir and requires byte-identical
# /api/v1/query results, a matching /api/v1/estimate Nyquist rate, and
# WAL replay accounting in /api/v1/stats.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/nyquistd" ./cmd/nyquistd
go build -o "$workdir/monitorsim" ./cmd/monitorsim

# wait_port LOGFILE: echoes the port once the daemon reports it.
wait_port() {
    local log=$1 port=""
    for _ in $(seq 1 100); do
        port=$(sed -n 's/.*listening on .*:\([0-9]*\)$/\1/p' "$log" | head -1)
        [ -n "$port" ] && { echo "$port"; return 0; }
        sleep 0.1
    done
    echo "server_smoke: nyquistd never reported its port" >&2
    cat "$log" >&2
    return 1
}

# wait_ready PORT: blocks until /readyz answers 200. The listener binds
# before WAL replay, so a durable daemon can briefly 503 its data
# endpoints after the port is up — that window is exactly what /readyz
# exists to cover.
wait_ready() {
    local p=$1
    for _ in $(seq 1 100); do
        if curl -sf "http://127.0.0.1:$p/readyz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "server_smoke: nyquistd never became ready" >&2
    return 1
}

# start_daemon LOGFILE ARGS...: starts nyquistd with a bind retry (a
# stale port or slow teardown must not flake the job); sets $daemon and
# $port.
start_daemon() {
    local log=$1 attempt
    shift
    for attempt in 1 2 3; do
        "$workdir/nyquistd" "$@" >"$log" 2>&1 &
        daemon=$!
        if port=$(wait_port "$log"); then
            return 0
        fi
        kill "$daemon" 2>/dev/null || true
        wait "$daemon" 2>/dev/null || true
        echo "server_smoke: start attempt $attempt failed, retrying" >&2
    done
    echo "server_smoke: nyquistd failed to start after 3 attempts" >&2
    cat "$log" >&2
    return 1
}

log="$workdir/nyquistd.log"
start_daemon "$log" -addr 127.0.0.1:0 -bulk-addr 127.0.0.1:0
echo "server_smoke: nyquistd up on port $port"

# The load generator exits non-zero when the server's estimate misses
# the diurnal ground truth — that failure fails the job via set -e.
"$workdir/monitorsim" -push "http://127.0.0.1:$port"

# Bulk lane: the same parse/append core over the plain-TCP
# length-prefixed lane. The generator asserts exact accepted+rejected
# accounting frame by frame and a sustained throughput floor — a lane
# that silently drops frames or crawls fails the job.
bulk=$(sed -n 's/.*bulk lane on \(.*\)$/\1/p' "$log" | head -1)
if [ -z "$bulk" ]; then
    echo "server_smoke: nyquistd never reported its bulk lane" >&2
    cat "$log" >&2
    exit 1
fi
"$workdir/monitorsim" -push-bulk "$bulk" -push-min-rate 25000

curl -sf "http://127.0.0.1:$port/healthz" >/dev/null
curl -sf "http://127.0.0.1:$port/readyz" >/dev/null
curl -sf "http://127.0.0.1:$port/api/v1/stats" | tee "$workdir/stats.json"
echo

# Dashboard read path: one ?match= pull fans across the series family and
# reconstructs onto the stored 675 s grid. On-grid linear reconstruction
# must reproduce the stored samples exactly — same timestamps, same
# values as the raw single-series query.
curl -sf "http://127.0.0.1:$port/api/v1/query?series=sim%2Fdiurnal%2Fgauge&max_points=100000" >"$workdir/raw.json"
curl -sf "http://127.0.0.1:$port/api/v1/query?match=sim%2F*&reconstruct=linear&step=675&max_points=100000" >"$workdir/recon.json"
python3 - "$workdir/raw.json" "$workdir/recon.json" <<'PY'
import json, sys
raw = json.load(open(sys.argv[1]))
mr = json.load(open(sys.argv[2]))
assert mr["matches"] == 1, f"match pull answered {mr['matches']} series, want 1"
r = mr["results"][0]
assert r.get("reconstruct") == "linear", f"reconstruct={r.get('reconstruct')!r}"
assert r.get("step_seconds") == 675, f"step_seconds={r.get('step_seconds')}"
pts, rpts = raw["points"], r["points"]
assert len(rpts) == len(pts) > 0, f"{len(rpts)} reconstructed vs {len(pts)} raw points"
for a, b in zip(pts, rpts):
    assert a["ts"] == b["ts"], f"grid drifted: {a['ts']} vs {b['ts']}"
    assert abs(a["value"] - b["value"]) < 1e-9, f"on-grid value changed at {a['ts']}: {a['value']} vs {b['value']}"
print(f"server_smoke: reconstructed ?match= pull OK ({len(rpts)} points on the 675 s grid)")
PY

# Live /metrics scrape: the exposition must parse (every non-comment
# line is NAME[{LABELS}] VALUE) and the core families must be present
# with the traffic just pushed accounted for.
curl -sf "http://127.0.0.1:$port/metrics" >"$workdir/metrics.txt"
bad=$(grep -vE '^(#|$)' "$workdir/metrics.txt" \
    | grep -cvE '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|\+Inf|-Inf|NaN)$' || true)
if [ "$bad" -ne 0 ]; then
    echo "server_smoke: $bad malformed exposition lines in /metrics" >&2
    grep -vE '^(#|$)' "$workdir/metrics.txt" \
        | grep -vE '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|\+Inf|-Inf|NaN)$' | head -5 >&2
    exit 1
fi
for fam in nyquistd_http_requests_total nyquistd_http_request_seconds \
    nyquistd_ingest_points_total nyquistd_ingest_parse_total \
    nyquistd_query_seconds nyquistd_tsdb_appends_total \
    nyquistd_tsdb_series nyquistd_wal_enabled nyquistd_wal_fsync_seconds \
    nyquistd_query_cache_hits_total nyquistd_query_cache_misses_total \
    nyquistd_query_cache_bytes nyquistd_query_cache_max_bytes \
    nyquistd_estimator_series nyquistd_estimator_probes_total nyquistd_up \
    nyquistd_bulk_frames_total nyquistd_bulk_bytes_total \
    nyquistd_bulk_connections nyquistd_ingest_batch_bytes; do
    grep -q "^# TYPE $fam " "$workdir/metrics.txt" || {
        echo "server_smoke: /metrics missing family $fam" >&2; exit 1; }
done
accepted=$(sed -n 's/^nyquistd_ingest_points_total{result="accepted"} \([0-9]*\)$/\1/p' "$workdir/metrics.txt")
if [ -z "$accepted" ] || [ "$accepted" -eq 0 ]; then
    echo "server_smoke: /metrics did not account for the pushed points (accepted=$accepted)" >&2
    exit 1
fi
echo "server_smoke: /metrics clean ($(grep -c '^# TYPE' "$workdir/metrics.txt") families, $accepted accepted points)"

kill -TERM "$daemon"
rc=0
wait "$daemon" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "server_smoke: nyquistd exited $rc on SIGTERM, want a clean 0" >&2
    cat "$log" >&2
    exit 1
fi
grep -q "shutting down" "$log" || { echo "server_smoke: no graceful-shutdown line in the log" >&2; cat "$log" >&2; exit 1; }
echo "server_smoke: PASS phase 1 (clean shutdown)"

# ---------------------------------------------------------------------
# Phase 2: kill-and-restart durability.
datadir="$workdir/data"
dlog="$workdir/nyquistd-durable.log"
start_daemon "$dlog" -addr 127.0.0.1:0 -data-dir "$datadir" \
    -fsync-every 2ms -state-every 100ms
wait_ready "$port"
echo "server_smoke: durable nyquistd up on port $port (data dir $datadir)"

"$workdir/monitorsim" -push "http://127.0.0.1:$port"

# Let the group commit and a state-record sweep land, then capture the
# pre-crash answers. 1024 pushed samples = 8 sealed 128-point blocks, so
# the WAL holds every point.
sleep 0.5
series="sim%2Fdiurnal%2Fgauge"
curl -sf "http://127.0.0.1:$port/api/v1/query?series=$series&max_points=100000" >"$workdir/query_before.json"
curl -sf "http://127.0.0.1:$port/api/v1/estimate?series=$series" >"$workdir/est_before.json"

kill -KILL "$daemon"
wait "$daemon" 2>/dev/null || true
echo "server_smoke: SIGKILLed the durable daemon mid-flight"

start_daemon "$dlog.2" -addr 127.0.0.1:0 -data-dir "$datadir" \
    -fsync-every 2ms -state-every 100ms
wait_ready "$port"
grep -q "recovered $datadir" "$dlog.2" || { echo "server_smoke: no recovery line after restart" >&2; cat "$dlog.2" >&2; exit 1; }
echo "server_smoke: restarted on port $port: $(grep 'recovered' "$dlog.2")"

curl -sf "http://127.0.0.1:$port/api/v1/query?series=$series&max_points=100000" >"$workdir/query_after.json"
curl -sf "http://127.0.0.1:$port/api/v1/estimate?series=$series" >"$workdir/est_after.json"
curl -sf "http://127.0.0.1:$port/api/v1/stats" >"$workdir/stats_after.json"

if ! cmp -s "$workdir/query_before.json" "$workdir/query_after.json"; then
    echo "server_smoke: query results differ across the crash" >&2
    diff <(head -c 2000 "$workdir/query_before.json") <(head -c 2000 "$workdir/query_after.json") >&2 || true
    exit 1
fi
echo "server_smoke: query results byte-identical across SIGKILL"

nyq() { sed -n 's/.*"nyquist_hz":\([0-9.e+-]*\).*/\1/p' "$1"; }
before=$(nyq "$workdir/est_before.json")
after=$(nyq "$workdir/est_after.json")
awk -v a="$before" -v b="$after" 'BEGIN {
    if (a <= 0 || b <= 0) { print "server_smoke: missing nyquist_hz (before=" a ", after=" b ")"; exit 1 }
    rel = (a > b ? a - b : b - a) / a
    if (rel > 1e-6) { print "server_smoke: estimate drifted across restart: " a " -> " b; exit 1 }
}' || exit 1
echo "server_smoke: estimate survived the crash ($before Hz)"

grep -q '"wal":{' "$workdir/stats_after.json" || { echo "server_smoke: stats missing wal section" >&2; cat "$workdir/stats_after.json" >&2; exit 1; }
grep -q '"points":1024' "$workdir/stats_after.json" || { echo "server_smoke: replay accounting missing 1024 points" >&2; cat "$workdir/stats_after.json" >&2; exit 1; }

kill -TERM "$daemon"
rc=0
wait "$daemon" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "server_smoke: durable nyquistd exited $rc on SIGTERM, want a clean 0" >&2
    cat "$dlog.2" >&2
    exit 1
fi
grep -q "WAL sealed and committed" "$dlog.2" || { echo "server_smoke: no WAL-seal line on graceful shutdown" >&2; cat "$dlog.2" >&2; exit 1; }
echo "server_smoke: PASS (clean shutdown + crash recovery)"
