#!/usr/bin/env bash
# server_smoke.sh — the CI serving-path smoke test.
#
# Builds the real binaries, starts nyquistd on a random port, drives it
# with monitorsim's load-generator mode (a synthetic known-Nyquist
# diurnal series over HTTP; the generator itself asserts the estimate
# endpoint converges near ground truth), then sends SIGTERM and requires
# a clean graceful shutdown (exit 0 with a final store report).
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/nyquistd" ./cmd/nyquistd
go build -o "$workdir/monitorsim" ./cmd/monitorsim

log="$workdir/nyquistd.log"
"$workdir/nyquistd" -addr 127.0.0.1:0 >"$log" 2>&1 &
daemon=$!

port=""
for _ in $(seq 1 100); do
    port=$(sed -n 's/.*listening on .*:\([0-9]*\)$/\1/p' "$log" | head -1)
    [ -n "$port" ] && break
    sleep 0.1
done
if [ -z "$port" ]; then
    echo "server_smoke: nyquistd never reported its port" >&2
    cat "$log" >&2
    exit 1
fi
echo "server_smoke: nyquistd up on port $port"

# The load generator exits non-zero when the server's estimate misses
# the diurnal ground truth — that failure fails the job via set -e.
"$workdir/monitorsim" -push "http://127.0.0.1:$port"

curl -sf "http://127.0.0.1:$port/healthz" >/dev/null
curl -sf "http://127.0.0.1:$port/api/v1/stats" | tee "$workdir/stats.json"
echo

kill -TERM "$daemon"
rc=0
wait "$daemon" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "server_smoke: nyquistd exited $rc on SIGTERM, want a clean 0" >&2
    cat "$log" >&2
    exit 1
fi
grep -q "shutting down" "$log" || { echo "server_smoke: no graceful-shutdown line in the log" >&2; cat "$log" >&2; exit 1; }
echo "server_smoke: PASS (clean shutdown)"
