// Package repro reproduces "Towards a Cost vs. Quality Sweet Spot for
// Monitoring Networks" (HotNets 2021): treating periodically polled
// datacenter metrics as sampled signals and using the Nyquist-Shannon
// theorem to choose measurement rates.
//
// Import the public APIs instead of this package:
//
//   - repro/nyquist — estimation, aliasing detection, adaptive sampling,
//     reconstruction (the paper's contribution)
//   - repro/fleet — the synthetic datacenter, monitoring pipeline, and
//     the drivers that regenerate every figure of the evaluation
//
// The toolkit also runs as a network service: cmd/nyquistd is the
// Nyquist-aware ingest/query daemon (HTTP batch ingest with a live
// estimate per pushed series, estimate-tuned retention over
// Gorilla-compressed storage, tier-stitched range queries, and — with
// -data-dir — a write-ahead log plus block snapshots that make the
// daemon restart-safe; see docs/API.md), and cmd/monitorsim -push
// load-generates against it.
//
// The benchmarks in this package (bench_test.go) regenerate each paper
// figure under the Go benchmark harness; see EXPERIMENTS.md for
// paper-versus-measured results (serving figures in BENCH_ingest.json)
// and DESIGN.md for the system inventory.
package repro
