// Package repro reproduces "Towards a Cost vs. Quality Sweet Spot for
// Monitoring Networks" (HotNets 2021): treating periodically polled
// datacenter metrics as sampled signals and using the Nyquist-Shannon
// theorem to choose measurement rates.
//
// Import the public APIs instead of this package:
//
//   - repro/nyquist — estimation, aliasing detection, adaptive sampling,
//     reconstruction (the paper's contribution)
//   - repro/fleet — the synthetic datacenter, monitoring pipeline, and
//     the drivers that regenerate every figure of the evaluation
//
// The benchmarks in this package (bench_test.go) regenerate each paper
// figure under the Go benchmark harness; see EXPERIMENTS.md for
// paper-versus-measured results and DESIGN.md for the system inventory.
package repro
