package repro

// Cross-module integration tests: each walks a full operator workflow
// through the public APIs only, crossing dcsim -> monitor -> core ->
// report boundaries the way the figure drivers do.

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/fleet"
	"repro/internal/trace"
	"repro/nyquist"
)

var t0 = time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)

// TestPipelinePollStoreEstimateArchive is the end-to-end a-posteriori
// path: poll a device at the ad-hoc production rate into the store, audit
// the stored series, archive it at the Nyquist rate, and read it back.
func TestPipelinePollStoreEstimateArchive(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	dev, err := fleet.NewDevice("rack1/temp", fleet.Temperature, 2e-4, time.Minute, rng, 1001)
	if err != nil {
		t.Fatal(err)
	}

	// 1. Production polling into the store.
	store := fleet.NewStore(0)
	poller := &fleet.StaticPoller{ID: dev.ID, Target: dev, Interval: time.Minute, Model: fleet.DefaultCostModel()}
	cost, err := poller.Run(store, t0, 0, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Samples != 1440 {
		t.Fatalf("polled %d samples", cost.Samples)
	}

	// 2. Audit the stored series (irregular-capable path).
	stored, err := store.Full(dev.ID)
	if err != nil {
		t.Fatal(err)
	}
	var est nyquist.Estimator
	res, err := est.EstimateSeries(stored)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Oversampled() {
		t.Fatalf("1-minute polls of a %v Hz device must be oversampled", dev.TrueNyquist)
	}
	ratio := res.NyquistRate / dev.TrueNyquist
	if ratio < 0.4 || ratio > 2 {
		t.Fatalf("stored-trace estimate %v vs ground truth %v", res.NyquistRate, dev.TrueNyquist)
	}

	// 3. Re-archive the stored stream at the Nyquist rate.
	archive := fleet.NewStore(0)
	arch, err := fleet.NewArchiver(dev.ID, archive, time.Minute, fleet.ArchiverConfig{
		WindowSamples: 1440,
		QuantStep:     dev.Profile().QuantStep,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range stored.Points() {
		if err := arch.Ingest(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := arch.Flush(); err != nil {
		t.Fatal(err)
	}
	if arch.Reduction() < 4 {
		t.Fatalf("archive reduction = %v, want > 4x", arch.Reduction())
	}

	// 4. Read back at the original rate and compare.
	rec, err := arch.ReadBack(1.0 / 60)
	if err != nil {
		t.Fatal(err)
	}
	orig := stored.Values()
	n := rec.Len()
	if n > len(orig) {
		n = len(orig)
	}
	if n < len(orig)*9/10 {
		t.Fatalf("read back only %d of %d samples", n, len(orig))
	}
	fid, err := nyquist.CompareSignals(orig[:n], rec.Values[:n])
	if err != nil {
		t.Fatal(err)
	}
	if fid.NRMSE > 0.05 {
		t.Fatalf("read-back NRMSE = %v", fid.NRMSE)
	}
}

// TestPipelineCounterMetric walks the counter path: cumulative export,
// differencing, estimation, and a budget decision.
func TestPipelineCounterMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	dev, err := fleet.NewDevice("sw3/discards", fleet.OutboundDiscards, 5e-4, 30*time.Second, rng, 1002)
	if err != nil {
		t.Fatal(err)
	}
	counter := dev.CounterTrace(t0, 0, 24*time.Hour)
	rate, err := fleet.RateFromCounter(counter)
	if err != nil {
		t.Fatal(err)
	}
	var est nyquist.Estimator
	res, err := est.Estimate(rate)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fleet.Allocate([]fleet.Demand{{ID: dev.ID, NyquistRate: res.NyquistRate}}, dev.PollRate())
	if err != nil {
		t.Fatal(err)
	}
	if plan.LosslessCount != 1 {
		t.Fatal("current poll budget must cover the counter's Nyquist demand")
	}
	if plan.Allocations[0].Rate >= dev.PollRate() {
		t.Fatalf("allocator granted %v, the full production rate — no savings", plan.Allocations[0].Rate)
	}
}

// TestPipelineTraceExportImport round-trips a polled series through the
// CSV trace format and re-audits it, the cmd/nyquistscan path.
func TestPipelineTraceExportImport(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	dev, err := fleet.NewDevice("lb2/linkutil", fleet.LinkUtil, 8e-4, 30*time.Second, rng, 1003)
	if err != nil {
		t.Fatal(err)
	}
	u := dev.Trace(t0, 0, 12*time.Hour)

	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, u.Series()); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != u.Len() {
		t.Fatalf("round trip lost samples: %d vs %d", back.Len(), u.Len())
	}
	var est nyquist.Estimator
	direct, err := est.Estimate(u)
	if err != nil {
		t.Fatal(err)
	}
	viaCSV, err := est.EstimateSeries(back)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(direct.NyquistRate-viaCSV.NyquistRate) > 1e-9 {
		t.Fatalf("CSV round trip changed the estimate: %v vs %v", direct.NyquistRate, viaCSV.NyquistRate)
	}
}

// TestPipelineAdaptiveOnFleetDevice runs the §4.2 loop against a fleet
// device with a mid-run burst and verifies the detector/adapter/estimator
// agree end to end.
func TestPipelineAdaptiveOnFleetDevice(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	dev, err := fleet.NewDevice("sw4/fcs", fleet.FCSErrors, 1e-4, 30*time.Second, rng, 1004)
	if err != nil {
		t.Fatal(err)
	}
	dev.AddBurst(fleet.Burst{Start: 30000, Duration: 20000, Freq: 8e-3, Amp: 50})

	sampler, err := nyquist.NewAdaptiveSampler(nyquist.AdaptiveConfig{
		InitialRate:   1.0 / 600,
		MaxRate:       1.0 / 10,
		EpochDuration: 7200,
		Estimator:     nyquist.EstimatorConfig{EnergyCutoff: 0.90},
		Detector:      nyquist.DualRateConfig{Tolerance: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	run, err := sampler.Run(dev, 0, 86400)
	if err != nil {
		t.Fatal(err)
	}
	// The burst must push at least one epoch's rate above the quiet
	// baseline.
	var quietMax, burstMax float64
	for _, e := range run.Epochs {
		switch {
		case e.Start < 28000:
			if e.Rate > quietMax {
				quietMax = e.Rate
			}
		case e.Start < 50000:
			if e.Rate > burstMax {
				burstMax = e.Rate
			}
		}
	}
	if burstMax <= quietMax {
		t.Fatalf("burst did not raise the rate: quiet %v, burst %v", quietMax, burstMax)
	}
	// And the whole day (including dual-rate probe overhead) must cost
	// less than a static poller provisioned to capture the burst, which
	// must run at the burst's Nyquist rate (2 x 8e-3 Hz) around the
	// clock.
	burstNyquist := 2 * 8e-3
	if static := int(86400 * burstNyquist); run.TotalSamples >= static {
		t.Fatalf("adaptive cost %d not below burst-provisioned static %d", run.TotalSamples, static)
	}
}

// TestPipelineGroupAudit audits a multi-metric device group jointly (§6
// multivariate) from traces collected by one poller.
func TestPipelineGroupAudit(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	names := []string{"cpu", "mem", "link"}
	metrics := []fleet.Metric{fleet.CPUUtil5pct, fleet.MemoryUsage, fleet.LinkUtil}
	bands := []float64{6e-4, 5e-5, 3e-4}
	var traces []*nyquist.Uniform
	var devs []*fleet.Device
	for i := range names {
		d, err := fleet.NewDevice(names[i], metrics[i], bands[i], time.Minute, rng, uint64(1100+i))
		if err != nil {
			t.Fatal(err)
		}
		devs = append(devs, d)
		traces = append(traces, d.Trace(t0, 0, 24*time.Hour))
	}
	var est nyquist.Estimator
	g, err := est.EstimateGroup(names, traces)
	if err != nil {
		t.Fatal(err)
	}
	if g.Names[g.Driver] != "cpu" {
		t.Fatalf("driver = %s, want cpu (the fastest band)", g.Names[g.Driver])
	}
	if g.GroupRate < devs[0].TrueNyquist*0.5 || g.GroupRate > devs[0].TrueNyquist*2 {
		t.Fatalf("group rate %v vs cpu requirement %v", g.GroupRate, devs[0].TrueNyquist)
	}
	// Joint downsampling at the group rate must preserve pairwise
	// correlations.
	worstNRMSE, drift, err := nyquist.GroupRoundTrip(traces, g.GroupRate, 1.5, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if worstNRMSE > 0.25 {
		t.Fatalf("worst member NRMSE = %v", worstNRMSE)
	}
	_ = drift
}

// TestPipelineAlignedGroupFromStore collects two metrics at different
// rates into the store, aligns them onto a common grid, and runs the §6
// group analysis — the full multivariate workflow from raw polls.
func TestPipelineAlignedGroupFromStore(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	fast, err := fleet.NewDevice("cpu", fleet.CPUUtil5pct, 5e-4, 30*time.Second, rng, 1107)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := fleet.NewDevice("mem", fleet.MemoryUsage, 1e-4, 2*time.Minute, rng, 1108)
	if err != nil {
		t.Fatal(err)
	}
	store := fleet.NewStore(0)
	for _, p := range []*fleet.StaticPoller{
		{ID: "cpu", Target: fast, Interval: 30 * time.Second, Model: fleet.DefaultCostModel()},
		{ID: "mem", Target: slow, Interval: 2 * time.Minute, Model: fleet.DefaultCostModel()},
	} {
		if _, err := p.Run(store, t0, 0, 24*time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	sCPU, err := store.Full("cpu")
	if err != nil {
		t.Fatal(err)
	}
	sMem, err := store.Full("mem")
	if err != nil {
		t.Fatal(err)
	}
	aligned, err := nyquist.AlignToCommonGrid([]*nyquist.Series{sCPU, sMem}, nyquist.NearestNeighbor)
	if err != nil {
		t.Fatal(err)
	}
	if aligned[0].Interval != aligned[1].Interval {
		t.Fatal("alignment failed to unify intervals")
	}
	var est nyquist.Estimator
	g, err := est.EstimateGroup([]string{"cpu", "mem"}, aligned)
	if err != nil {
		t.Fatal(err)
	}
	if g.Names[g.Driver] != "cpu" {
		t.Fatalf("driver = %s, want cpu", g.Names[g.Driver])
	}
	// The aligned grid is the memory poller's coarse one; the group rate
	// must still be at or below it (otherwise joint downsampling at the
	// group rate would be impossible).
	if g.GroupRate > aligned[0].SampleRate() {
		t.Fatalf("group rate %v above the aligned grid rate %v", g.GroupRate, aligned[0].SampleRate())
	}
}

// TestPipelineFleetManager runs the concurrent adaptive manager over a
// mixed fleet of simulated devices and checks fleet-level economics.
func TestPipelineFleetManager(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	metrics := []fleet.Metric{fleet.LinkUtil, fleet.CPUUtil5pct, fleet.FCSErrors, fleet.Temperature}
	var targets []fleet.ManagedTarget
	var staticSamples int
	const dur = 24 * time.Hour
	for i := 0; i < 8; i++ {
		m := metrics[i%len(metrics)]
		p := fleet.ProfileFor(m)
		band := p.NyquistLo / 2 * math.Pow(p.NyquistHi/p.NyquistLo, 0.5)
		dev, err := fleet.NewDevice(m.String(), m, band, 30*time.Second, rng, uint64(2000+i))
		if err != nil {
			t.Fatal(err)
		}
		targets = append(targets, fleet.ManagedTarget{ID: dev.ID + string(rune('0'+i)), Target: dev})
		staticSamples += int(dur.Seconds() / 30)
	}
	mgr, err := fleet.NewManager(fleet.ManagerConfig{
		Adaptive: nyquist.AdaptiveConfig{
			InitialRate:   1.0 / 300,
			MaxRate:       1.0 / 30,
			EpochDuration: 4 * 3600,
			Estimator:     nyquist.EstimatorConfig{EnergyCutoff: 0.90},
			Detector:      nyquist.DualRateConfig{Tolerance: 0.25},
		},
		Concurrency: 4,
		Model:       fleet.DefaultCostModel(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mgr.Run(targets, 0, dur)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d targets failed", rep.Failed)
	}
	if rep.TotalCost.Samples >= staticSamples {
		t.Fatalf("fleet adaptive cost %d not below static 30s cost %d", rep.TotalCost.Samples, staticSamples)
	}
}

// TestPipelineAliasedTraceRefusal confirms the toolchain refuses to
// certify savings on an under-sampled trace at every layer.
func TestPipelineAliasedTraceRefusal(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	// True Nyquist 8x the poll rate: badly under-sampled, continuous
	// spectrum.
	dev, err := fleet.NewDevice("bad/dev", fleet.LinkUtil, 1.0/30*4, 30*time.Second, rng, 1005)
	if err != nil {
		t.Fatal(err)
	}
	u := dev.Trace(t0, 0, 24*time.Hour)
	var est nyquist.Estimator
	_, err = est.Estimate(u)
	if err == nil {
		// Harmonic folding can hide aliasing from a single trace (the
		// §4.1 motivation); the dual-rate probe must still catch it.
		det := nyquist.NewDualRateDetector(nyquist.DualRateConfig{})
		v, _, derr := det.Probe(dev, 0, 86400, 1.0/30, 1.0/110)
		if derr != nil {
			t.Fatal(derr)
		}
		if !v.Aliased {
			t.Fatal("neither the estimator nor the dual-rate probe flagged an 8x under-sampled device")
		}
		return
	}
	if !errors.Is(err, nyquist.ErrAliased) {
		t.Fatalf("err = %v, want ErrAliased", err)
	}
}
