module repro/tools/nyquistvet

go 1.24

require (
	golang.org/x/sync v0.10.0
	golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
)
