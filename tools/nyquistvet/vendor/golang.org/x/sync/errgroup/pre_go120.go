// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

//go:build !go1.20

package errgroup

import "context"

func withCancelCause(parent context.Context) (context.Context, func(error)) {
	ctx, cancel := context.WithCancel(parent)
	return ctx, func(error) { cancel() }
}
