// Copyright 2016 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package errgroup provides synchronization, error propagation, and Context
// cancelation for groups of goroutines working on subtasks of a common task.
//
// [errgroup.Group] is related to [sync.WaitGroup] but adds handling of tasks
// returning errors.
package errgroup

import (
	"context"
	"fmt"
	"sync"
)

type token struct{}

// A Group is a collection of goroutines working on subtasks that are part of
// the same overall task.
//
// A zero Group is valid, has no limit on the number of active goroutines,
// and does not cancel on error.
type Group struct {
	cancel func(error)

	wg sync.WaitGroup

	sem chan token

	errOnce sync.Once
	err     error
}

func (g *Group) done() {
	if g.sem != nil {
		<-g.sem
	}
	g.wg.Done()
}

// WithContext returns a new Group and an associated Context derived from ctx.
//
// The derived Context is canceled the first time a function passed to Go
// returns a non-nil error or the first time Wait returns, whichever occurs
// first.
func WithContext(ctx context.Context) (*Group, context.Context) {
	ctx, cancel := withCancelCause(ctx)
	return &Group{cancel: cancel}, ctx
}

// Wait blocks until all function calls from the Go method have returned, then
// returns the first non-nil error (if any) from them.
func (g *Group) Wait() error {
	g.wg.Wait()
	if g.cancel != nil {
		g.cancel(g.err)
	}
	return g.err
}

// Go calls the given function in a new goroutine.
// It blocks until the new goroutine can be added without the number of
// active goroutines in the group exceeding the configured limit.
//
// The first call to return a non-nil error cancels the group's context, if the
// group was created by calling WithContext. The error will be returned by Wait.
func (g *Group) Go(f func() error) {
	if g.sem != nil {
		g.sem <- token{}
	}

	g.wg.Add(1)
	go func() {
		defer g.done()

		if err := f(); err != nil {
			g.errOnce.Do(func() {
				g.err = err
				if g.cancel != nil {
					g.cancel(g.err)
				}
			})
		}
	}()
}

// TryGo calls the given function in a new goroutine only if the number of
// active goroutines in the group is currently below the configured limit.
//
// The return value reports whether the goroutine was started.
func (g *Group) TryGo(f func() error) bool {
	if g.sem != nil {
		select {
		case g.sem <- token{}:
			// Note: this allows barging iff channels in general allow barging.
		default:
			return false
		}
	}

	g.wg.Add(1)
	go func() {
		defer g.done()

		if err := f(); err != nil {
			g.errOnce.Do(func() {
				g.err = err
				if g.cancel != nil {
					g.cancel(g.err)
				}
			})
		}
	}()
	return true
}

// SetLimit limits the number of active goroutines in this group to at most n.
// A negative value indicates no limit.
//
// Any subsequent call to the Go method will block until it can add an active
// goroutine without exceeding the configured limit.
//
// The limit must not be modified while any goroutines in the group are active.
func (g *Group) SetLimit(n int) {
	if n < 0 {
		g.sem = nil
		return
	}
	if len(g.sem) != 0 {
		panic(fmt.Errorf("errgroup: modify limit while %v goroutines in the group are still active", len(g.sem)))
	}
	g.sem = make(chan token, n)
}
