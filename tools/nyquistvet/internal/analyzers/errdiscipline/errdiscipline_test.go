package errdiscipline_test

import (
	"testing"

	"repro/tools/nyquistvet/internal/analyzers/errdiscipline"
	"repro/tools/nyquistvet/internal/vettest"
)

func TestErrDiscipline(t *testing.T) {
	vettest.Run(t, "testdata", errdiscipline.Analyzer, "errdisc")
}
