// Package errdisc exercises the errdiscipline analyzer.
package errdisc

import (
	"http"
	"tsdb"
	"wal"
)

func appends(db *tsdb.DB, l *wal.Log) {
	db.Append("a", 1)     // want `error from tsdb.DB.Append discarded`
	_ = db.Append("a", 2) // want `error from tsdb.DB.Append assigned to _`
	db.AppendUniform("u") // want `error from tsdb.DB.AppendUniform discarded`
	_ = l.Append(1, nil)  // want `error from wal.Log.Append assigned to _`
	defer l.Sync()        // want `error from deferred wal.Log.Sync discarded`
	go db.Append("b", 3)  // want `error from go tsdb.DB.Append discarded`

	if err := db.Append("c", 4); err != nil {
		_ = err
	}
	//nyquist:allow-discard replay path re-reports through LogStats
	_ = l.Append(2, nil)
}

func writes(w http.ResponseWriter, b []byte) int {
	w.Write(b)         // want `error from http.ResponseWriter.Write discarded`
	n, _ := w.Write(b) // want `error from http.ResponseWriter.Write assigned to _`
	if _, err := w.Write(b); err != nil {
		return 0
	}
	return n
}
