// Package http stubs the net/http ResponseWriter shape for
// errdiscipline fixtures (interface methods match like concrete ones).
package http

type ResponseWriter interface {
	Write(b []byte) (int, error)
}
