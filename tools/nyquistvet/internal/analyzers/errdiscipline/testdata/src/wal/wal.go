// Package wal stubs the WAL surface for errdiscipline fixtures.
package wal

type Log struct{}

func (l *Log) Append(kind byte, b []byte) error { return nil }
func (l *Log) Sync() error                      { return nil }
