// Package tsdb stubs the store surface for errdiscipline fixtures;
// matching is by package, receiver, and method name.
package tsdb

type DB struct{}

func (db *DB) Append(id string, v float64) error { return nil }
func (db *DB) AppendUniform(id string) error     { return nil }
