// Package errdiscipline is a targeted errcheck over the calls whose
// errors are load-bearing for durability and observability: store
// appends, WAL appends and syncs, and HTTP/metrics response writes.
// The PR 5 "accepted-but-never-landed" bug was exactly a silent
// `_ = store.Append(...)`; this analyzer makes that shape unmergeable.
// A deliberate discard needs //nyquist:allow-discard <reason> on the
// line (or the line above) — the annotation is the documentation.
package errdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"repro/tools/nyquistvet/internal/directive"
)

var Analyzer = &analysis.Analyzer{
	Name:     "errdiscipline",
	Doc:      "flag discarded errors from store appends, WAL appends/syncs, and handler writes",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// denyKey identifies a method by package name, receiver type name, and
// method name. Package *name* (not path) so fixtures can stub the real
// packages; receiver interfaces (http.ResponseWriter) match the same
// way.
type denyKey struct {
	pkg, recv, meth string
}

var denied = map[denyKey]bool{
	{"tsdb", "DB", "Append"}:              true,
	{"tsdb", "DB", "AppendUniform"}:       true,
	{"monitor", "Store", "Append"}:        true,
	{"monitor", "Store", "AppendUniform"}: true,
	{"wal", "Log", "Append"}:              true,
	{"wal", "Log", "Sync"}:                true,
	{"obs", "Registry", "WriteProm"}:      true,
	{"http", "ResponseWriter", "Write"}:   true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := directive.Collect(pass)

	report := func(pos token.Pos, what string) {
		if !dirs.Suppressed(pass, pos, "allow-discard") {
			pass.Reportf(pos, "%s", what)
		}
	}

	ins.Preorder([]ast.Node{
		(*ast.ExprStmt)(nil), (*ast.AssignStmt)(nil),
		(*ast.GoStmt)(nil), (*ast.DeferStmt)(nil),
	}, func(n ast.Node) {
		if directive.InTestFile(pass.Fset, n.Pos()) {
			return
		}
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if name := deniedCall(pass, call); name != "" {
					report(call.Pos(), "error from "+name+" discarded; handle it or annotate //nyquist:allow-discard <reason>")
				}
			}
		case *ast.GoStmt:
			if name := deniedCall(pass, n.Call); name != "" {
				report(n.Call.Pos(), "error from go "+name+" discarded; handle it or annotate //nyquist:allow-discard <reason>")
			}
		case *ast.DeferStmt:
			if name := deniedCall(pass, n.Call); name != "" {
				report(n.Call.Pos(), "error from deferred "+name+" discarded; handle it or annotate //nyquist:allow-discard <reason>")
			}
		case *ast.AssignStmt:
			checkAssign(pass, n, report)
		}
	})
	return nil, nil
}

// checkAssign flags `_`-discards at the error result position of a
// deny-listed call on either side of a (possibly multi-value)
// assignment.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt, report func(token.Pos, string)) {
	// Single call expanded to multiple LHS: x, _ := w.Write(b)
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		name := deniedCall(pass, call)
		if name == "" {
			return
		}
		for i, lhs := range as.Lhs {
			if isBlank(lhs) && i < len(as.Lhs) && resultIsError(pass, call, i) {
				report(lhs.Pos(), "error from "+name+" assigned to _; handle it or annotate //nyquist:allow-discard <reason>")
			}
		}
		return
	}
	// Pairwise: _ = d.log.Append(...)
	for i := range as.Rhs {
		if i >= len(as.Lhs) || !isBlank(as.Lhs[i]) {
			continue
		}
		if call, ok := as.Rhs[i].(*ast.CallExpr); ok {
			if name := deniedCall(pass, call); name != "" {
				report(as.Lhs[i].Pos(), "error from "+name+" assigned to _; handle it or annotate //nyquist:allow-discard <reason>")
			}
		}
	}
}

// deniedCall returns "pkg.Recv.Meth" if the call resolves to a
// deny-listed method whose results include an error, else "".
func deniedCall(pass *analysis.Pass, call *ast.CallExpr) string {
	fn, _ := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return ""
	}
	k := denyKey{fn.Pkg().Name(), named.Obj().Name(), fn.Name()}
	if !denied[k] {
		return ""
	}
	if !hasErrorResult(sig) {
		return ""
	}
	return k.pkg + "." + k.recv + "." + k.meth
}

func hasErrorResult(sig *types.Signature) bool {
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

func resultIsError(pass *analysis.Pass, call *ast.CallExpr, i int) bool {
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok || i >= sig.Results().Len() {
		return false
	}
	return isErrorType(sig.Results().At(i).Type())
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
