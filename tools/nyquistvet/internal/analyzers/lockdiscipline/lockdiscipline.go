// Package lockdiscipline machine-checks what code may do while a
// contended lock is held. Mutex struct fields annotated
// //nyquist:hotlock (the tsdb shard lock, the series lock) define
// critical sections; inside one, the analyzer flags direct calls that
// block or do I/O (time.Sleep, os/net/fmt-print/log), channel
// operations (except non-blocking selects with a default), WaitGroup
// and Cond waits, and — the re-entrancy contract — calls to exported
// tsdb.DB / monitor.Store methods, which would self-deadlock on the
// lock already held.
//
// The OnSeal hook contract is checked the same way from the caller's
// side: a function literal passed to (*tsdb.DB).OnSeal runs under the
// shard lock, so its body is analyzed as an implicit critical section
// even though the Lock() call is in another package.
//
// The analysis is direct-call only (no transitive closure): a helper
// that blocks must be flagged where the blocking construct is, which
// keeps diagnostics attached to the line that must change. Deliberate
// exceptions carry //nyquist:allow-block <reason>.
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"repro/tools/nyquistvet/internal/directive"
)

var Analyzer = &analysis.Analyzer{
	Name:      "lockdiscipline",
	Doc:       "flag blocking calls, I/O, and store re-entrancy while a //nyquist:hotlock lock (or the OnSeal shard lock) is held",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*hotLock)(nil)},
	Run:       run,
}

// hotLock marks a struct field as an annotated hot lock, so packages
// embedding or locking it across package boundaries see the contract.
type hotLock struct{}

func (*hotLock) AFact() {}

// blockingPkgs deny-lists standard-library packages whose calls block
// or perform I/O. Map value restricts to named functions; "*" is the
// whole package.
var blockingPkgs = map[string]map[string]bool{
	"time":     {"Sleep": true, "After": true, "Tick": true},
	"os":       {"*": true},
	"net":      {"*": true},
	"net/http": {"*": true},
	"syscall":  {"*": true},
	"io":       {"ReadAll": true, "Copy": true, "CopyN": true, "CopyBuffer": true},
	"bufio":    {"*": true},
	"fmt": {
		"Print": true, "Println": true, "Printf": true,
		"Fprint": true, "Fprintln": true, "Fprintf": true,
	},
	"log":      {"*": true},
	"log/slog": {"*": true},
}

// reentrant lists (package name, receiver type name) pairs whose
// exported methods re-enter the store and would self-deadlock under a
// shard lock.
var reentrant = map[[2]string]bool{
	{"tsdb", "DB"}:       true,
	{"monitor", "Store"}: true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := directive.Collect(pass)

	// Collect //nyquist:hotlock fields declared in this package and
	// export a fact per field for cross-package lock sites.
	hot := make(map[*types.Var]bool)
	ins.Preorder([]ast.Node{(*ast.StructType)(nil)}, func(n ast.Node) {
		st := n.(*ast.StructType)
		for _, f := range st.Fields.List {
			if !directive.FieldMarked(f, "hotlock") {
				continue
			}
			for _, name := range f.Names {
				if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
					hot[v] = true
					pass.ExportObjectFact(v, &hotLock{})
				}
			}
		}
	})
	isHot := func(v *types.Var) bool {
		if hot[v] {
			return true
		}
		var f hotLock
		return pass.ImportObjectFact(v, &f)
	}

	c := &checker{pass: pass, dirs: dirs, isHot: isHot}
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil || directive.InTestFile(pass.Fset, decl.Pos()) {
			return
		}
		c.walkStmts(decl.Body.List, map[*types.Var]string{})
	})

	// OnSeal hooks run under the shard lock in the registering
	// package's callee; check literal hook bodies as critical sections.
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if directive.InTestFile(pass.Fset, call.Pos()) {
			return
		}
		fn, _ := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if fn == nil || fn.Name() != "OnSeal" || !recvMatches(fn, "tsdb", "DB") {
			return
		}
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				held := map[*types.Var]string{nil: "the OnSeal hook (runs under the shard lock)"}
				c.walkStmts(lit.Body.List, held)
			}
		}
	})
	return nil, nil
}

type checker struct {
	pass  *analysis.Pass
	dirs  *directive.Map
	isHot func(*types.Var) bool
}

// walkStmts tracks the held-lock set through a statement list in
// source order. Nested blocks get a copy: a lock taken inside a branch
// does not leak past it, and an unlock inside a branch does not clear
// the outer hold (conservative both ways, reported only when held).
func (c *checker) walkStmts(stmts []ast.Stmt, held map[*types.Var]string) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if v, op := c.lockOp(s.X); v != nil {
				switch op {
				case "Lock", "RLock":
					held[v] = v.Name()
				case "Unlock", "RUnlock":
					delete(held, v)
				}
				continue
			}
			c.checkNode(s, held)
		case *ast.DeferStmt:
			if v, op := c.lockOp(s.Call); v != nil && (op == "Unlock" || op == "RUnlock") {
				continue // deferred unlock: held to function end
			}
			c.checkNode(s, held)
		case *ast.BlockStmt:
			c.walkStmts(s.List, clone(held))
		case *ast.IfStmt:
			c.checkParts(held, s.Init, s.Cond)
			c.walkStmts(s.Body.List, clone(held))
			if s.Else != nil {
				c.walkStmts([]ast.Stmt{s.Else}, clone(held))
			}
		case *ast.ForStmt:
			c.checkParts(held, s.Init, s.Cond, s.Post)
			c.walkStmts(s.Body.List, clone(held))
		case *ast.RangeStmt:
			c.checkParts(held, s.X)
			c.walkStmts(s.Body.List, clone(held))
		case *ast.SwitchStmt:
			c.checkParts(held, s.Init, s.Tag)
			for _, cc := range s.Body.List {
				c.walkStmts(cc.(*ast.CaseClause).Body, clone(held))
			}
		case *ast.TypeSwitchStmt:
			c.checkParts(held, s.Init, s.Assign)
			for _, cc := range s.Body.List {
				c.walkStmts(cc.(*ast.CaseClause).Body, clone(held))
			}
		case *ast.SelectStmt:
			// A select with a default case is non-blocking at the comm
			// points; its case bodies are still checked.
			hasDefault := false
			for _, cc := range s.Body.List {
				if cc.(*ast.CommClause).Comm == nil {
					hasDefault = true
				}
			}
			for _, cc := range s.Body.List {
				comm := cc.(*ast.CommClause)
				if !hasDefault && comm.Comm != nil {
					c.checkNode(comm.Comm, held)
				}
				c.walkStmts(comm.Body, clone(held))
			}
		case *ast.LabeledStmt:
			c.walkStmts([]ast.Stmt{s.Stmt}, held)
		default:
			c.checkNode(s, held)
		}
	}
}

func (c *checker) checkParts(held map[*types.Var]string, nodes ...ast.Node) {
	for _, n := range nodes {
		if n != nil && !isNilNode(n) {
			c.checkNode(n, held)
		}
	}
}

// isNilNode guards against typed-nil ast.Node interfaces from optional
// statement fields (s.Init, s.Cond, ...).
func isNilNode(n ast.Node) bool {
	switch v := n.(type) {
	case ast.Stmt:
		return v == nil
	case ast.Expr:
		return v == nil
	}
	return false
}

// checkNode reports blocking constructs inside one statement or
// expression subtree while any lock is held. Function literals are
// skipped: defining a closure under a lock is fine, running it is
// checked wherever it runs.
func (c *checker) checkNode(root ast.Node, held map[*types.Var]string) {
	if len(held) == 0 {
		return
	}
	lockDesc := func() string {
		for _, d := range held {
			return d
		}
		return "a lock"
	}
	report := func(pos token.Pos, what string) {
		if !c.dirs.Suppressed(c.pass, pos, "allow-block") {
			c.pass.Reportf(pos, "%s while %s is held", what, lockDesc())
		}
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			report(n.Pos(), "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				report(n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			fn, _ := typeutil.Callee(c.pass.TypesInfo, n).(*types.Func)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if fns, ok := blockingPkgs[fn.Pkg().Path()]; ok && (fns["*"] || fns[fn.Name()]) {
				report(n.Pos(), "call to "+fn.Pkg().Name()+"."+fn.Name()+" (blocking or I/O)")
				return true
			}
			if fn.Pkg().Path() == "sync" && fn.Name() == "Wait" {
				report(n.Pos(), "call to sync "+recvName(fn)+".Wait")
				return true
			}
			if ast.IsExported(fn.Name()) && reentrantRecv(fn) {
				report(n.Pos(), "re-entrant call to "+fn.Pkg().Name()+"."+recvName(fn)+"."+fn.Name())
			}
		}
		return true
	})
}

// lockOp matches <expr>.<hotfield>.(Lock|RLock|Unlock|RUnlock)() and
// returns the lock field's object.
func (c *checker) lockOp(e ast.Expr) (*types.Var, string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, ""
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fv, _ := c.pass.TypesInfo.Uses[inner.Sel].(*types.Var)
	if fv == nil || !c.isHot(fv) {
		return nil, ""
	}
	return fv, op
}

func recvMatches(fn *types.Func, pkgName, typeName string) bool {
	return fn.Pkg() != nil && fn.Pkg().Name() == pkgName && recvName(fn) == typeName
}

func reentrantRecv(fn *types.Func) bool {
	return reentrant[[2]string{fn.Pkg().Name(), recvName(fn)}]
}

func recvName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	if named, ok := rt.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func clone(m map[*types.Var]string) map[*types.Var]string {
	out := make(map[*types.Var]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
