package lockdiscipline_test

import (
	"testing"

	"repro/tools/nyquistvet/internal/analyzers/lockdiscipline"
	"repro/tools/nyquistvet/internal/vettest"
)

func TestLockDiscipline(t *testing.T) {
	vettest.Run(t, "testdata", lockdiscipline.Analyzer, "lockdisc")
}
