// Package lockdisc exercises the lockdiscipline analyzer.
package lockdisc

import (
	"fmt"
	"sync"
	"time"

	"tsdb"
)

type shard struct {
	//nyquist:hotlock
	mu   sync.Mutex
	vals []float64
	ch   chan int
	// cold is unannotated: holding it is not checked.
	cold sync.Mutex
}

func (s *shard) bad(db *tsdb.DB) {
	s.mu.Lock()
	time.Sleep(1)     // want `call to time.Sleep \(blocking or I/O\) while mu is held`
	fmt.Println("x")  // want `call to fmt.Println \(blocking or I/O\) while mu is held`
	s.ch <- 1         // want `channel send while mu is held`
	<-s.ch            // want `channel receive while mu is held`
	db.Append("a", 1) // want `re-entrant call to tsdb.DB.Append while mu is held`
	s.mu.Unlock()
	time.Sleep(1) // released: fine
}

func (s *shard) deferred() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vals = append(s.vals, 1)
	time.Sleep(1) // want `call to time.Sleep \(blocking or I/O\) while mu is held`
}

func (s *shard) coldLock() {
	s.cold.Lock()
	time.Sleep(1) // unannotated lock: fine
	s.cold.Unlock()
}

func (s *shard) nonblockingSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1: // non-blocking: a default case exists
	default:
	}
}

func (s *shard) suppressed() {
	s.mu.Lock()
	//nyquist:allow-block drain is bounded by the queue cap
	s.ch <- 2
	s.mu.Unlock()
}

func register(db *tsdb.DB) {
	db.OnSeal(func(id string) {
		fmt.Println("sealed", id) // want `call to fmt.Println \(blocking or I/O\) while the OnSeal hook \(runs under the shard lock\) is held`
		db.Append(id, 0)          // want `re-entrant call to tsdb.DB.Append while the OnSeal hook \(runs under the shard lock\) is held`
	})
}
