// Package tsdb stubs the store surface for lockdiscipline fixtures:
// exported DB methods are the re-entrancy deny list, and OnSeal hooks
// run under the shard lock.
package tsdb

type DB struct{}

func (db *DB) Append(id string, v float64) error { return nil }
func (db *DB) SealAll() int                      { return 0 }
func (db *DB) OnSeal(fn func(id string))         {}
