// Package unsafeview tracks the zero-copy views the ingest fast path
// creates — unsafe.String/unsafe.Slice results and the values returned
// by functions marked //nyquist:view (fastParseLine and friends) — and
// reports any place one escapes its batch lifetime: stored into a
// package-level variable, a struct field or map reachable beyond the
// function, used as a map key, sent on a channel, captured by a
// function literal, passed to a goroutine, returned from a function
// not itself marked //nyquist:view, or passed to a function that
// retains its argument (determined per-function and exported as a
// fact, so the intern table — which copies via string(b) before
// storing — is automatically safe, while a function that stores the
// parameter itself is not).
//
// The tracking is intraprocedural and flow-insensitive on purpose:
// views propagate through locals, subslices, field reads, and
// composite literals, and the escape set is the PR 6 postmortem list.
// Copies (string([]byte), []byte(string), strings.Clone) launder a
// view back into an owned value. Deliberate escapes carry
// //nyquist:allow-view <reason>.
package unsafeview

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"repro/tools/nyquistvet/internal/directive"
)

var Analyzer = &analysis.Analyzer{
	Name:      "unsafeview",
	Doc:       "report zero-copy views (unsafe.String / //nyquist:view results) escaping their batch lifetime",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*returnsView)(nil), (*retainsParams)(nil)},
	Run:       run,
}

// returnsView marks a function whose results are zero-copy views;
// downstream packages treat its call results as views.
type returnsView struct{}

func (*returnsView) AFact() {}

// retainsParams records (as a bitmask over parameter indices, capped
// at 64) which parameters a function stores somewhere that outlives
// the call. Passing a view to a retaining parameter is an escape.
type retainsParams struct {
	Mask uint64
}

func (*retainsParams) AFact() {}

func run(pass *analysis.Pass) (interface{}, error) {
	// Retention facts are only computed for in-module code; a standard
	// library function that stashes a parameter (time.Parse building a
	// ParseError, say) is not a view escape the repo can act on.
	if directive.StdlibPackage(pass) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := directive.Collect(pass)

	// Pass 1: classify this package's functions — view producers and
	// parameter retention — and export the facts.
	viewFns := make(map[*types.Func]bool)
	retains := make(map[*types.Func]uint64)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil || directive.InTestFile(pass.Fset, decl.Pos()) {
			return
		}
		fn, _ := pass.TypesInfo.Defs[decl.Name].(*types.Func)
		if fn == nil {
			return
		}
		if directive.FuncMarked(decl, "view") {
			viewFns[fn] = true
			pass.ExportObjectFact(fn, &returnsView{})
		}
		if mask := retentionMask(pass, decl, fn); mask != 0 {
			retains[fn] = mask
			pass.ExportObjectFact(fn, &retainsParams{Mask: mask})
		}
	})

	t := &tracker{
		pass: pass,
		dirs: dirs,
		isViewFn: func(fn *types.Func) bool {
			if viewFns[fn] {
				return true
			}
			var f returnsView
			return pass.ImportObjectFact(fn, &f)
		},
		retainMask: func(fn *types.Func) uint64 {
			if m, ok := retains[fn]; ok {
				return m
			}
			var f retainsParams
			if pass.ImportObjectFact(fn, &f) {
				return f.Mask
			}
			return 0
		},
	}

	// Pass 2: per function, propagate views and report escapes.
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil || directive.InTestFile(pass.Fset, decl.Pos()) {
			return
		}
		fn, _ := pass.TypesInfo.Defs[decl.Name].(*types.Func)
		if fn == nil {
			return
		}
		t.checkFunc(decl, fn)
	})
	return nil, nil
}

type tracker struct {
	pass       *analysis.Pass
	dirs       *directive.Map
	isViewFn   func(*types.Func) bool
	retainMask func(*types.Func) uint64

	// per-function state
	views  map[*types.Var]bool
	params map[*types.Var]bool
	marked bool
}

func (t *tracker) report(pos token.Pos, what string) {
	if !t.dirs.Suppressed(t.pass, pos, "allow-view") {
		t.pass.Reportf(pos, "zero-copy view %s", what)
	}
}

func (t *tracker) checkFunc(decl *ast.FuncDecl, fn *types.Func) {
	t.views = make(map[*types.Var]bool)
	t.params = make(map[*types.Var]bool)
	t.marked = t.isViewFn(fn)
	sig := fn.Type().(*types.Signature)
	if r := sig.Recv(); r != nil {
		t.params[r] = true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		t.params[sig.Params().At(i)] = true
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure capturing a view may run after the batch is
			// recycled; report captures at their use sites.
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok {
					if v, ok := t.pass.TypesInfo.Uses[id].(*types.Var); ok && t.views[v] {
						t.report(id.Pos(), "captured by function literal")
					}
				}
				return true
			})
			return false
		case *ast.AssignStmt:
			t.handleAssign(n)
		case *ast.SendStmt:
			if t.isView(n.Value) {
				t.report(n.Value.Pos(), "sent on a channel")
			}
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				if t.isView(arg) {
					t.report(arg.Pos(), "passed to a goroutine")
				}
			}
		case *ast.ReturnStmt:
			if !t.marked {
				for _, res := range n.Results {
					if t.isView(res) {
						t.report(res.Pos(), "returned from a function not marked //nyquist:view")
					}
				}
			}
		case *ast.CallExpr:
			t.checkCallArgs(n)
		}
		return true
	})
}

// handleAssign propagates views into locals and reports stores whose
// destination outlives the batch.
func (t *tracker) handleAssign(as *ast.AssignStmt) {
	// Map keys escape independently of the assigned value:
	// index[view] = x retains the view as the key.
	for _, lhs := range as.Lhs {
		if ix, ok := lhs.(*ast.IndexExpr); ok && t.isView(ix.Index) {
			if base := t.localBase(ix.X); base != nil {
				t.views[base] = true
			} else {
				t.report(ix.Index.Pos(), "used as a map key")
			}
		}
	}

	// Multi-value call: ln, ok := fastParseLine(b)
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok && t.isViewCall(call) {
			for _, lhs := range as.Lhs {
				t.assignViewTo(lhs)
			}
		}
		return
	}
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) || !t.isView(rhs) {
			continue
		}
		t.assignViewTo(as.Lhs[i])
	}
}

// assignViewTo classifies one LHS receiving a view value.
func (t *tracker) assignViewTo(lhs ast.Expr) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		v := t.objOf(lhs)
		if v == nil {
			return
		}
		if v.Parent() == t.pass.Pkg.Scope() {
			t.report(lhs.Pos(), "stored in package-level variable "+lhs.Name)
			return
		}
		t.views[v] = true
	case *ast.SelectorExpr:
		if base := t.localBase(lhs.X); base != nil {
			t.views[base] = true
		} else {
			t.report(lhs.Pos(), "stored in field "+lhs.Sel.Name+", escaping the batch lifetime")
		}
	case *ast.IndexExpr:
		if base := t.localBase(lhs.X); base != nil {
			t.views[base] = true
		} else {
			t.report(lhs.Pos(), "stored in a map or slice element, escaping the batch lifetime")
		}
	case *ast.StarExpr:
		t.report(lhs.Pos(), "stored through a pointer, escaping the batch lifetime")
	}
}

// checkCallArgs reports views passed to parameters the callee retains.
func (t *tracker) checkCallArgs(call *ast.CallExpr) {
	fn, _ := typeutil.Callee(t.pass.TypesInfo, call).(*types.Func)
	if fn == nil {
		return
	}
	mask := t.retainMask(fn)
	if mask == 0 {
		return
	}
	sig := fn.Type().(*types.Signature)
	for i, arg := range call.Args {
		if !t.isView(arg) {
			continue
		}
		bit := i
		if sig.Variadic() && bit >= sig.Params().Len() {
			bit = sig.Params().Len() - 1
		}
		if bit < 64 && mask&(1<<uint(bit)) != 0 {
			t.report(arg.Pos(), "passed to "+fn.Name()+", which retains its argument")
		}
	}
}

// isView reports whether the expression yields zero-copy view data.
func (t *tracker) isView(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return t.isView(e.X)
	case *ast.Ident:
		v, _ := t.pass.TypesInfo.Uses[e].(*types.Var)
		return v != nil && t.views[v]
	case *ast.SelectorExpr:
		return t.isView(e.X)
	case *ast.SliceExpr:
		return t.isView(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return t.isView(e.X)
		}
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if t.isView(elt) {
				return true
			}
		}
	case *ast.CallExpr:
		return t.isViewCall(e)
	}
	return false
}

// isViewCall reports whether a call produces a view: the unsafe
// builtins, or a function carrying the view mark/fact. Conversions
// (string([]byte) etc.) copy, so they launder views.
func (t *tracker) isViewCall(call *ast.CallExpr) bool {
	switch callee := typeutil.Callee(t.pass.TypesInfo, call).(type) {
	case *types.Builtin:
		switch callee.Name() {
		case "String", "Slice", "SliceData", "StringData":
			return true
		}
	case *types.Func:
		return t.isViewFn(callee)
	}
	return false
}

// localBase returns the root variable of a selector/index chain when
// it is a plain local (not a parameter, receiver, or package-level
// variable); views stored into locals propagate instead of escaping.
func (t *tracker) localBase(e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			v, _ := t.pass.TypesInfo.Uses[x].(*types.Var)
			if v == nil || t.params[v] || v.Parent() == t.pass.Pkg.Scope() {
				return nil
			}
			return v
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func (t *tracker) objOf(id *ast.Ident) *types.Var {
	if v, ok := t.pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := t.pass.TypesInfo.Uses[id].(*types.Var)
	return v
}

// retentionMask computes which of fn's parameters escape the call:
// stored into globals, fields, map/slice elements or keys, sent on
// channels, passed to goroutines, or captured by closures. Conversions
// are a copy barrier — string(b) inside the intern table does not
// retain b itself.
func retentionMask(pass *analysis.Pass, decl *ast.FuncDecl, fn *types.Func) uint64 {
	sig := fn.Type().(*types.Signature)
	paramBit := make(map[*types.Var]int)
	for i := 0; i < sig.Params().Len() && i < 64; i++ {
		p := sig.Params().At(i)
		if typeCarries(p.Type()) {
			paramBit[p] = i
		}
	}
	if len(paramBit) == 0 {
		return 0
	}
	var mask uint64
	// mark sets the bit for every parameter referenced in e outside a
	// call (calls copy or are themselves analyzed for retention).
	mark := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				return false
			case *ast.Ident:
				if v, ok := pass.TypesInfo.Uses[n].(*types.Var); ok {
					if bit, ok := paramBit[v]; ok {
						mask |= 1 << uint(bit)
					}
				}
			}
			return true
		})
	}
	lhsEscapes := func(lhs ast.Expr) bool {
		switch lhs := lhs.(type) {
		case *ast.Ident:
			v, _ := pass.TypesInfo.Uses[lhs].(*types.Var)
			return v != nil && v.Parent() == pass.Pkg.Scope()
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			return true
		}
		return false
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					mark(ix.Index) // map key retention
				}
				if !lhsEscapes(lhs) {
					continue
				}
				if len(n.Lhs) == len(n.Rhs) {
					mark(n.Rhs[i])
				} else {
					for _, rhs := range n.Rhs {
						mark(rhs)
					}
				}
			}
		case *ast.SendStmt:
			mark(n.Value)
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				mark(arg)
			}
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok {
					if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
						if bit, ok := paramBit[v]; ok {
							mask |= 1 << uint(bit)
						}
					}
				}
				return true
			})
			return false
		}
		return true
	})
	return mask
}

// typeCarries reports whether t contains string or []byte data at any
// depth — the only types a view can hide in.
func typeCarries(t types.Type) bool {
	return carries(t, 0)
}

func carries(t types.Type, depth int) bool {
	if depth > 8 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Slice:
		if b, ok := u.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Uint8 {
			return true
		}
		return carries(u.Elem(), depth+1)
	case *types.Array:
		return carries(u.Elem(), depth+1)
	case *types.Pointer:
		return carries(u.Elem(), depth+1)
	case *types.Map:
		return carries(u.Key(), depth+1) || carries(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carries(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	}
	return false
}
