package unsafeview_test

import (
	"testing"

	"repro/tools/nyquistvet/internal/analyzers/unsafeview"
	"repro/tools/nyquistvet/internal/vettest"
)

func TestUnsafeView(t *testing.T) {
	vettest.Run(t, "testdata", unsafeview.Analyzer, "view")
}
