// Package viewdep provides a cross-package view producer and a
// retaining sink for the unsafeview fixture's fact-flow cases.
package viewdep

//nyquist:view
func Sub(b []byte) []byte { return b[1:] }

var keep string

func Keep(s string) { keep = s }
