// Package view exercises the unsafeview analyzer. The ingest function
// reproduces the PR 6 invalid-UTF-8 fast-path escape shape: a
// zero-copy view of the request buffer stored into package state that
// outlives the batch.
package view

import (
	"unsafe"

	"viewdep"
)

var index = map[string]int{}
var lastName string
var sink []byte
var ch = make(chan string, 1)

//nyquist:view
func viewString(b []byte) string {
	return unsafe.String(unsafe.SliceData(b), len(b))
}

//nyquist:view
func parseName(line []byte) string {
	i := 0
	for i < len(line) && line[i] != ' ' {
		i++
	}
	return viewString(line[:i])
}

func ingest(line []byte) {
	name := parseName(line)
	lastName = name        // want `zero-copy view stored in package-level variable lastName`
	index[name] = 1        // want `zero-copy view used as a map key`
	index[clone(name)] = 1 // copy barrier: fine
}

func clone(s string) string {
	b := []byte(s)
	return string(b)
}

func send(line []byte) {
	n := parseName(line)
	ch <- n // want `zero-copy view sent on a channel`
}

func leak(line []byte) string {
	n := parseName(line)
	return n // want `zero-copy view returned from a function not marked //nyquist:view`
}

func capture(line []byte) func() {
	n := parseName(line)
	return func() { lastName = n } // want `zero-copy view captured by function literal`
}

func retain(s string) { lastName = s }

func callRetainer(line []byte) {
	n := parseName(line)
	retain(n) // want `zero-copy view passed to retain, which retains its argument`
}

func crossPkg(line []byte) {
	v := viewdep.Sub(line)
	sink = v                      // want `zero-copy view stored in package-level variable sink`
	viewdep.Keep(parseName(line)) // want `zero-copy view passed to Keep, which retains its argument`
}

func suppressed(line []byte) {
	n := parseName(line)
	//nyquist:allow-view intern table copies before the batch recycles
	lastName = n
}

type rec struct{ name string }

func viaLocalStruct(line []byte) {
	var r rec
	r.name = parseName(line) // local carrier: propagates, no escape yet
	index[r.name] = 1        // want `zero-copy view used as a map key`
}
