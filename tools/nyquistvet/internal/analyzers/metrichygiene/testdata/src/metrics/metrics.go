// Package metrics exercises the metrichygiene analyzer.
package metrics

import (
	"metricsdep"
	"obs"
)

var r obs.Registry

func register(dynamic string) {
	_ = metricsdep.Used
	r.Counter("nyquistd_ingest_lines_total", "lines ingested")
	r.Histogram("nyquistd_flush_seconds", "flush latency", nil)
	r.GaugeFunc("nyquistd_heap_bytes", "heap in use", func() float64 { return 0 })

	r.Counter("nyquistd_drops", "dropped")               // want `counter "nyquistd_drops" must end in _total`
	r.Gauge("nyquistd_queue_depth_total", "depth")       // want `gauge "nyquistd_queue_depth_total" must not end in _total`
	r.Histogram("nyquistd_seal_ms", "seal latency", nil) // want `uses non-base unit _ms`
	r.Counter("httpd_requests_total", "requests")        // want `must match`
	r.Counter("nyquistd_Bad_total", "bad case")          // want `must match`
	r.Gauge("nyquistd_live_series", "")                  // want `empty help string`
	r.Counter("nyquistd_ingest_lines_total", "dup")      // want `registered more than once in this package`
	r.Counter("nyquistd_dep_ticks_total", "dup of dep")  // want `already registered by metricsdep`
	r.Counter(dynamic, "dynamic name")                   // want `must be a compile-time constant`
}
