// Package obs stubs the real internal/obs registry surface for
// analyzer fixtures; metrichygiene matches by package and receiver
// name, so the stub exercises the identical shape.
package obs

type Registry struct{}

type Counter struct{}
type Gauge struct{}
type Histogram struct{}
type CounterVec struct{}
type GaugeVec struct{}
type HistogramVec struct{}

func (r *Registry) Counter(name, help string) *Counter { return nil }
func (r *Registry) Gauge(name, help string) *Gauge     { return nil }
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return nil
}
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec { return nil }
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec     { return nil }
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return nil
}
func (r *Registry) GaugeFunc(name, help string, fn func() float64)   {}
func (r *Registry) CounterFunc(name, help string, fn func() float64) {}
