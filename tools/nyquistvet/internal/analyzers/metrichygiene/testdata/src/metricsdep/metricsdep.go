// Package metricsdep registers one metric so the cross-package
// duplicate check in the metrics fixture has something to collide
// with.
package metricsdep

import "obs"

var Used = 0

var r obs.Registry

func init() {
	r.Counter("nyquistd_dep_ticks_total", "ticks emitted by the dep package")
}
