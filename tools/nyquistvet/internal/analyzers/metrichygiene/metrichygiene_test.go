package metrichygiene_test

import (
	"testing"

	"repro/tools/nyquistvet/internal/analyzers/metrichygiene"
	"repro/tools/nyquistvet/internal/vettest"
)

func TestMetricHygiene(t *testing.T) {
	vettest.Run(t, "testdata", metrichygiene.Analyzer, "metrics")
}
