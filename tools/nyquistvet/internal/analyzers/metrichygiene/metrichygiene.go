// Package metrichygiene machine-checks the repo's metric-naming
// contract at every internal/obs registration site: names are
// compile-time constants matching ^nyquistd_[a-z0-9_]+$, counters end
// in _total, gauges and histograms do not, unit-bearing suffixes use
// the Prometheus base units (_seconds, _bytes — never _ms or _kb),
// help strings are non-empty constants, and no name is registered
// twice, in-package or across packages (checked through a package
// fact carrying each package's registered names).
package metrichygiene

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"repro/tools/nyquistvet/internal/directive"
)

var Analyzer = &analysis.Analyzer{
	Name:      "metrichygiene",
	Doc:       "check internal/obs metric registrations: nyquistd_ prefix, _total counters, base units, unique names, non-empty help",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*metricNames)(nil)},
	Run:       run,
}

// metricNames records which metric names a package registers, so a
// downstream package re-registering one is flagged at its site.
type metricNames struct {
	Names []string
}

func (*metricNames) AFact() {}

// registryMethods maps each obs.Registry registration method to its
// metric family.
var registryMethods = map[string]string{
	"Counter":      "counter",
	"CounterVec":   "counter",
	"CounterFunc":  "counter",
	"Gauge":        "gauge",
	"GaugeVec":     "gauge",
	"GaugeFunc":    "gauge",
	"Histogram":    "histogram",
	"HistogramVec": "histogram",
}

var nameRe = regexp.MustCompile(`^nyquistd_[a-z0-9_]+$`)

// nonBaseUnits are suffix segments that encode a non-base unit; the
// Prometheus convention (and DESIGN.md) wants _seconds and _bytes.
var nonBaseUnits = map[string]bool{
	"ms": true, "msec": true, "msecs": true, "millis": true, "milliseconds": true,
	"us": true, "usec": true, "micros": true, "microseconds": true,
	"ns": true, "nsec": true, "nanos": true, "nanoseconds": true,
	"sec": true, "secs": true, "minutes": true, "hours": true,
	"kb": true, "kib": true, "mb": true, "mib": true, "gb": true, "gib": true,
	"kilobytes": true, "megabytes": true, "gigabytes": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Names registered by dependency packages, from facts.
	imported := make(map[string]string) // name -> package path
	for _, pf := range pass.AllPackageFacts() {
		if mn, ok := pf.Fact.(*metricNames); ok && pf.Package != pass.Pkg {
			for _, n := range mn.Names {
				imported[n] = pf.Package.Path()
			}
		}
	}

	local := make(map[string]bool)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if directive.InTestFile(pass.Fset, call.Pos()) {
			return
		}
		fn, _ := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if fn == nil || !isRegistryMethod(fn) {
			return
		}
		family := registryMethods[fn.Name()]
		if len(call.Args) < 2 {
			return
		}
		name, ok := constString(pass, call.Args[0])
		if !ok {
			pass.Reportf(call.Args[0].Pos(), "metric name must be a compile-time constant string")
			return
		}
		pos := call.Args[0].Pos()
		if !nameRe.MatchString(name) || strings.Contains(name, "__") || strings.HasSuffix(name, "_") {
			pass.Reportf(pos, "metric name %q must match ^nyquistd_[a-z0-9_]+$ (no __ runs, no trailing _)", name)
		}
		stem := name
		if family == "counter" {
			if !strings.HasSuffix(name, "_total") {
				pass.Reportf(pos, "counter %q must end in _total", name)
			}
			stem = strings.TrimSuffix(name, "_total")
		} else if strings.HasSuffix(name, "_total") {
			pass.Reportf(pos, "%s %q must not end in _total (reserved for counters)", family, name)
		}
		if i := strings.LastIndex(stem, "_"); i >= 0 {
			if unit := stem[i+1:]; nonBaseUnits[unit] {
				pass.Reportf(pos, "metric %q uses non-base unit _%s; use _seconds or _bytes", name, unit)
			}
		}
		if help, ok := constString(pass, call.Args[1]); !ok {
			pass.Reportf(call.Args[1].Pos(), "metric help must be a compile-time constant string")
		} else if strings.TrimSpace(help) == "" {
			pass.Reportf(call.Args[1].Pos(), "metric %q has an empty help string", name)
		}
		if local[name] {
			pass.Reportf(pos, "metric %q registered more than once in this package", name)
		} else if from, dup := imported[name]; dup {
			pass.Reportf(pos, "metric %q already registered by %s", name, from)
		}
		local[name] = true
	})

	if len(local) > 0 {
		names := make([]string, 0, len(local))
		for n := range local {
			names = append(names, n)
		}
		sort.Strings(names)
		pass.ExportPackageFact(&metricNames{Names: names})
	}
	return nil, nil
}

// isRegistryMethod reports whether fn is a registration method on the
// obs metrics registry. Matching is by receiver type name and package
// name (not full path) so fixture stubs exercise the same shape.
func isRegistryMethod(fn *types.Func) bool {
	if _, ok := registryMethods[fn.Name()]; !ok {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Name() == "obs"
}

func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
