// Package hotpathalloc turns the repo's alloc-ceiling tests into a
// compile-time gate: functions annotated //nyquist:hotpath — the warm
// ingest pipeline (runIngest, fastParseLine, DB.AppendBatch, the tier
// bucketing fast path) — and every function reachable from them
// through static in-package calls must not contain allocating
// constructs. Cross-package calls are checked through facts: a
// dependency package exports an "allocates" fact for each function
// whose body (transitively, within that package) allocates without a
// //nyquist:allow-alloc suppression, and a hot path calling it is
// flagged at the call site.
//
// Flagged constructs: calls into fmt/log/encoding-json and friends,
// non-constant string concatenation, string<->[]byte/[]rune
// conversions (except the compiler-optimized map-lookup, comparison
// and switch positions), make/new/&composite/slice-literal/map-literal,
// closures, go statements, interface boxing of non-pointer values, and
// appends that either grow a package-level slice or whose result is
// not assigned back to the appended slice. Cold branches inside hot
// functions (first-sight series, error paths, buffer growth) are
// suppressed line by line with //nyquist:allow-alloc <reason> — the
// annotation is the documentation. A suppression on a call to an
// in-package function declares the entire callee a cold branch: the
// call edge is cut from both the transitive-allocates closure and the
// hot-path walk. Standard-library packages are never analyzed for
// facts (see allocPkgs): their once-ever or error-only slow paths
// would otherwise mark nearly every function as allocating.
package hotpathalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"repro/tools/nyquistvet/internal/directive"
)

var Analyzer = &analysis.Analyzer{
	Name:      "hotpathalloc",
	Doc:       "report allocating constructs in //nyquist:hotpath functions and their in-module callees",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*allocates)(nil)},
	Run:       run,
}

// allocates marks a function whose body (transitively within its
// package) contains an unsuppressed allocating construct; hot callers
// in downstream packages report calls to it.
type allocates struct {
	// Where describes the first allocating construct, for the
	// cross-package diagnostic.
	Where string
}

func (*allocates) AFact() {}

// allocPkgs deny-lists standard-library packages whose exported calls
// allocate by construction (or do I/O, which has no place on a hot
// path either). "*" means every function in the package.
var allocPkgs = map[string]map[string]bool{
	"fmt":           {"*": true},
	"log":           {"*": true},
	"log/slog":      {"*": true},
	"encoding/json": {"*": true},
	"regexp":        {"*": true},
	"errors":        {"New": true, "Join": true},
	"strings": {
		"Join": true, "Repeat": true, "Replace": true, "ReplaceAll": true,
		"Split": true, "SplitN": true, "SplitAfter": true, "Fields": true,
		"Map": true, "ToUpper": true, "ToLower": true, "ToValidUTF8": true,
		"Clone": true,
	},
	"strconv": {
		"FormatFloat": true, "FormatInt": true, "FormatUint": true,
		"FormatBool": true, "Itoa": true, "Quote": true, "QuoteToASCII": true,
	},
	"sort": {"Slice": true, "SliceStable": true, "SliceIsSorted": true},
	"time": {"Parse": true, "ParseInLocation": true, "ParseDuration": true},
}

// funcInfo is what the analyzer learns about one declared function.
type funcInfo struct {
	decl *ast.FuncDecl
	// sites are this body's own unsuppressed allocating constructs.
	sites []allocSite
	// callees are static calls to functions declared in this package.
	callees []*types.Func
	// extAllocs are calls to imported functions carrying an allocates
	// fact.
	extAllocs []allocSite
	hot       bool
	// allocates is the transitive closure used for the exported fact.
	allocates bool
	where     string
}

type allocSite struct {
	pos  token.Pos
	desc string
}

func run(pass *analysis.Pass) (interface{}, error) {
	// Standard-library behavior is modeled by allocPkgs, not by facts:
	// computing transitive allocation over GOROOT packages would mark
	// sync.Pool.Get (pinSlow) and strconv.ParseFloat (error path) as
	// allocating and poison every caller.
	if directive.StdlibPackage(pass) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	dirs := directive.Collect(pass)

	funcs := make(map[*types.Func]*funcInfo)
	var order []*types.Func

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil || directive.InTestFile(pass.Fset, decl.Pos()) {
			return
		}
		fn, _ := pass.TypesInfo.Defs[decl.Name].(*types.Func)
		if fn == nil {
			return
		}
		fi := &funcInfo{decl: decl, hot: directive.FuncMarked(decl, "hotpath")}
		collectBody(pass, dirs, decl.Body, fi)
		funcs[fn] = fi
		order = append(order, fn)
	})

	// Transitive allocates closure over the in-package call graph.
	for changed := true; changed; {
		changed = false
		for _, fn := range order {
			fi := funcs[fn]
			if fi.allocates {
				continue
			}
			switch {
			case len(fi.sites) > 0:
				fi.allocates, fi.where = true, fi.sites[0].desc
			case len(fi.extAllocs) > 0:
				fi.allocates, fi.where = true, fi.extAllocs[0].desc
			default:
				for _, callee := range fi.callees {
					if cfi := funcs[callee]; cfi != nil && cfi.allocates {
						fi.allocates = true
						fi.where = "calls " + callee.Name() + ", which " + cfi.where
						break
					}
				}
			}
			if fi.allocates {
				changed = true
			}
		}
	}
	for _, fn := range order {
		if fi := funcs[fn]; fi.allocates {
			pass.ExportObjectFact(fn, &allocates{Where: fi.where})
		}
	}

	// Walk hot roots; report every reachable site once.
	reported := make(map[token.Pos]bool)
	for _, root := range order {
		if !funcs[root].hot {
			continue
		}
		seen := map[*types.Func]bool{}
		var visit func(fn *types.Func)
		visit = func(fn *types.Func) {
			if seen[fn] {
				return
			}
			seen[fn] = true
			fi := funcs[fn]
			if fi == nil {
				return
			}
			via := ""
			if fn != root {
				via = fmt.Sprintf(" (%s is on the hot path of %s)", fn.Name(), root.Name())
			}
			for _, s := range fi.sites {
				if !reported[s.pos] {
					reported[s.pos] = true
					pass.Reportf(s.pos, "hot path: %s%s", s.desc, via)
				}
			}
			for _, s := range fi.extAllocs {
				if !reported[s.pos] {
					reported[s.pos] = true
					pass.Reportf(s.pos, "hot path: %s%s", s.desc, via)
				}
			}
			for _, callee := range fi.callees {
				visit(callee)
			}
		}
		visit(root)
	}
	return nil, nil
}

// collectBody records body's allocating constructs and static callees
// into fi. Nested function literals are flagged as a single construct;
// their interiors are not walked (the closure is the allocation). The
// walk keeps an ancestor stack so conversions and appends can see the
// position they sit in.
func collectBody(pass *analysis.Pass, dirs *directive.Map, body *ast.BlockStmt, fi *funcInfo) {
	note := func(pos token.Pos, desc string) {
		if !dirs.Suppressed(pass, pos, "allow-alloc") {
			fi.sites = append(fi.sites, allocSite{pos, desc})
		}
	}

	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := true
		switch n := n.(type) {
		case *ast.FuncLit:
			note(n.Pos(), "function literal allocates a closure")
			descend = false
		case *ast.GoStmt:
			note(n.Pos(), "go statement allocates a goroutine")
		case *ast.CompositeLit:
			switch pass.TypesInfo.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				note(n.Pos(), "slice literal allocates")
			case *types.Map:
				note(n.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					note(n.Pos(), "&composite literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass.TypesInfo.TypeOf(n)) && pass.TypesInfo.Types[n].Value == nil {
				note(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pass.TypesInfo.TypeOf(n.Lhs[0])) {
				note(n.Pos(), "string += allocates")
			}
		case *ast.CallExpr:
			checkCall(pass, dirs, n, stack, fi, note)
		}
		if descend {
			stack = append(stack, n)
			return true
		}
		return false
	})
}

// checkCall classifies one call: builtin allocator, conversion,
// deny-listed stdlib call, in-package call edge, imported allocating
// function, or interface-boxing arguments.
func checkCall(pass *analysis.Pass, dirs *directive.Map, call *ast.CallExpr, stack []ast.Node, fi *funcInfo, note func(token.Pos, string)) {
	// Type conversions.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if !optimizedConversionPos(stack, call) {
			checkConversion(pass, call, tv.Type, note)
		}
		return
	}
	switch callee := typeutil.Callee(pass.TypesInfo, call).(type) {
	case *types.Builtin:
		switch callee.Name() {
		case "make":
			note(call.Pos(), "make allocates")
		case "new":
			note(call.Pos(), "new allocates")
		case "append":
			checkAppend(pass, call, stack, note)
		}
		return
	case *types.Func:
		pkg := callee.Pkg()
		if pkg == nil {
			return
		}
		if pkg == pass.Pkg {
			// An allow-alloc on the call site declares the whole callee a
			// cold branch (first-sight series creation, seal, fallback
			// parse): the call edge is cut, so neither the transitive
			// allocates closure nor the hot-path walk descends into it.
			if !dirs.Suppressed(pass, call.Pos(), "allow-alloc") {
				fi.callees = append(fi.callees, callee)
			}
		} else if fns, ok := allocPkgs[pkg.Path()]; ok && (fns["*"] || fns[callee.Name()]) {
			if !dirs.Suppressed(pass, call.Pos(), "allow-alloc") {
				fi.sites = append(fi.sites, allocSite{call.Pos(), "call to " + pkg.Name() + "." + callee.Name() + " allocates"})
			}
		} else {
			var fact allocates
			if pass.ImportObjectFact(callee, &fact) {
				if !dirs.Suppressed(pass, call.Pos(), "allow-alloc") {
					fi.extAllocs = append(fi.extAllocs, allocSite{call.Pos(), "call to " + pkg.Name() + "." + callee.Name() + " allocates (" + fact.Where + ")"})
				}
			}
		}
		checkBoxing(pass, call, callee.Type().(*types.Signature), note)
	}
}

// checkConversion flags string<->[]byte/[]rune conversions.
func checkConversion(pass *analysis.Pass, call *ast.CallExpr, to types.Type, note func(token.Pos, string)) {
	from := pass.TypesInfo.TypeOf(call.Args[0])
	if from == nil {
		return
	}
	switch {
	case isString(to) && isByteOrRuneSlice(from):
		note(call.Pos(), "string([]byte) conversion copies")
	case isByteOrRuneSlice(to) && isString(from):
		note(call.Pos(), "[]byte(string) conversion copies")
	}
}

// optimizedConversionPos reports whether the conversion sits in a
// position the compiler is guaranteed to optimize away: a map lookup
// key (m[string(b)] as an rvalue), a string comparison operand, or a
// switch tag.
func optimizedConversionPos(stack []ast.Node, conv *ast.CallExpr) bool {
	if len(stack) == 0 {
		return false
	}
	switch p := stack[len(stack)-1].(type) {
	case *ast.IndexExpr:
		if p.Index != ast.Expr(conv) {
			return false
		}
		// An index expression used as an assignment target is a map
		// insert: the key is retained, so the copy is real.
		if len(stack) >= 2 {
			if as, ok := stack[len(stack)-2].(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if lhs == ast.Expr(p) {
						return false
					}
				}
			}
		}
		return true
	case *ast.BinaryExpr:
		switch p.Op {
		case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
			return true
		}
	case *ast.SwitchStmt:
		return p.Tag == ast.Expr(conv)
	}
	return false
}

// checkBoxing flags concrete non-pointer values passed where the
// signature wants an interface: the conversion heap-allocates the
// value.
func checkBoxing(pass *analysis.Pass, call *ast.CallExpr, sig *types.Signature, note func(token.Pos, string)) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || pass.TypesInfo.Types[arg].IsNil() {
			continue
		}
		if _, already := at.Underlying().(*types.Interface); already {
			continue
		}
		if pointerShaped(at) {
			continue
		}
		note(arg.Pos(), "interface conversion of non-pointer value allocates")
	}
}

// checkAppend flags appends that grow a package-level slice, or whose
// result lands somewhere other than the appended slice (the growth
// then escapes the amortization the pooled buffers provide).
func checkAppend(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node, note func(token.Pos, string)) {
	if len(call.Args) == 0 {
		return
	}
	if v := baseVar(pass, call.Args[0]); v != nil && isPackageLevel(pass, v) {
		note(call.Pos(), "append grows package-level slice "+v.Name())
		return
	}
	var lhs ast.Expr
	if len(stack) > 0 {
		if as, ok := stack[len(stack)-1].(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
			for i, rhs := range as.Rhs {
				if rhs == ast.Expr(call) {
					lhs = as.Lhs[i]
					break
				}
			}
		}
	}
	if lhs == nil {
		note(call.Pos(), "append result not reassigned to the appended slice")
		return
	}
	if types.ExprString(lhs) != types.ExprString(call.Args[0]) {
		note(call.Pos(), "append result assigned to a different slice than it grows")
	}
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// pointerShaped reports whether boxing a value of type t into an
// interface stores the value directly in the data word (no allocation).
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func isBuiltin(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	b, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Builtin)
	return ok && b.Name() == name
}

// baseVar unwraps selectors/indexes/derefs to the root identifier's
// object.
func baseVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			v, _ := pass.TypesInfo.Uses[x].(*types.Var)
			return v
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isPackageLevel(pass *analysis.Pass, v *types.Var) bool {
	return v.Parent() == pass.Pkg.Scope()
}
