package hotpathalloc_test

import (
	"testing"

	"repro/tools/nyquistvet/internal/analyzers/hotpathalloc"
	"repro/tools/nyquistvet/internal/vettest"
)

func TestHotpathAlloc(t *testing.T) {
	vettest.Run(t, "testdata", hotpathalloc.Analyzer, "hotpath")
}
