// Package hotpath exercises the hotpathalloc analyzer: allocating
// constructs inside //nyquist:hotpath functions and their callees are
// flagged; cold functions, suppressed sites, and compiler-optimized
// conversion positions are not.
package hotpath

import (
	"fmt"

	"hotpathdep"
)

var global []int

var scratch []byte

//nyquist:hotpath
func HotFn(buf []byte, m map[string]int) string {
	s := fmt.Sprintf("x")      // want `hot path: call to fmt.Sprintf allocates`
	s = s + "y"                // want `hot path: string concatenation allocates`
	f := func() {}             // want `hot path: function literal allocates a closure`
	b := make([]byte, 8)       // want `hot path: make allocates`
	xs := []int{1, 2}          // want `hot path: slice literal allocates`
	global = append(global, 1) // want `hot path: append grows package-level slice global`
	sink(42)                   // want `hot path: interface conversion of non-pointer value allocates`
	helper()
	if v, ok := m[string(buf)]; ok { // optimized lookup: no copy
		_ = v
	}
	if string(buf) == "k" { // optimized comparison: no copy
		_ = b
	}
	m[string(buf)] = 1 // want `hot path: string\(\[\]byte\) conversion copies`
	buf = append(buf, 'x')
	other := append(buf, 'y') // want `hot path: append result assigned to a different slice than it grows`
	_, _, _ = f, xs, other
	return s
}

func helper() {
	p := new(int) // want `hot path: new allocates \(helper is on the hot path of HotFn\)`
	_ = p
}

//nyquist:hotpath
func HotSuppressed(n int) {
	if n > cap(scratch) {
		//nyquist:allow-alloc grow path runs once per resize
		scratch = make([]byte, n)
	}
}

//nyquist:hotpath
func HotNoReason() {
	//nyquist:allow-alloc
	q := make([]int, 1) // want `nyquist:allow-alloc suppression needs a reason`
	_ = q
}

//nyquist:hotpath
func HotCrossPkg() {
	_ = hotpathdep.Clean(1)
	_ = hotpathdep.Alloc() // want `hot path: call to hotpathdep.Alloc allocates`
}

// Cold is unannotated and unreachable from a hot root: its
// allocations are legal.
func Cold() string {
	return fmt.Sprintf("cold %d", 1)
}

func sink(v interface{}) { _ = v }
