// Package hotpathdep is an allocating dependency of the hotpath
// fixture: hotpathalloc exports an "allocates" fact for Alloc, and the
// downstream hot caller is flagged at its call site.
package hotpathdep

import "fmt"

func Alloc() string {
	return fmt.Sprintf("dep")
}

func Clean(x int) int { return x + 1 }
