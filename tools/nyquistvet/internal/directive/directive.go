// Package directive parses the //nyquist: comment directives the
// nyquistvet analyzers act on. Directives follow the Go toolchain's
// machine-directive syntax (`//tool:name args`, no space after the
// slashes) so gofmt preserves them and godoc hides them:
//
//	//nyquist:hotpath        — on a function: it and its in-module
//	                           callees must not allocate
//	//nyquist:view           — on a function: it returns zero-copy
//	                           view data (unsafe.String / subslices of
//	                           a caller-owned buffer); callers inherit
//	                           the lifetime obligation
//	//nyquist:hotlock        — on a mutex struct field: code holding
//	                           this lock must not block, do I/O, or
//	                           re-enter the store
//	//nyquist:allow-alloc <reason>   — suppress one hotpathalloc site
//	//nyquist:allow-view <reason>    — suppress one unsafeview site
//	//nyquist:allow-block <reason>   — suppress one lockdiscipline site
//	//nyquist:allow-discard <reason> — suppress one errdiscipline site
//
// The allow-* forms require a non-empty reason: an unexplained
// suppression is itself reported. A suppression applies to the source
// line it sits on, or — as a full-line comment — to the line
// immediately below it.
package directive

import (
	"go/ast"
	"go/build"
	"go/token"
	"path/filepath"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Prefix is the directive namespace, including the trailing colon.
const Prefix = "nyquist:"

// Directive is one parsed //nyquist: comment.
type Directive struct {
	// Name is the directive verb ("hotpath", "allow-alloc", ...).
	Name string
	// Reason is the free text after the verb (required for allow-*).
	Reason string
	// Pos is the comment's position.
	Pos token.Pos
}

// parse extracts a directive from one comment, if it is one.
func parse(c *ast.Comment) (Directive, bool) {
	rest, ok := strings.CutPrefix(c.Text, "//"+Prefix)
	if !ok {
		return Directive{}, false
	}
	name, reason, _ := strings.Cut(rest, " ")
	if name == "" {
		return Directive{}, false
	}
	return Directive{Name: name, Reason: strings.TrimSpace(reason), Pos: c.Pos()}, true
}

// FuncMarked reports whether fn's doc comment carries the named
// directive.
func FuncMarked(fn *ast.FuncDecl, name string) bool {
	return groupMarked(fn.Doc, name)
}

// FieldMarked reports whether the struct field carries the named
// directive, in its doc comment or its trailing line comment.
func FieldMarked(f *ast.Field, name string) bool {
	return groupMarked(f.Doc, name) || groupMarked(f.Comment, name)
}

func groupMarked(g *ast.CommentGroup, name string) bool {
	if g == nil {
		return false
	}
	for _, c := range g.List {
		if d, ok := parse(c); ok && d.Name == name {
			return true
		}
	}
	return false
}

// Map indexes every directive of a package by file and line, for
// line-level suppression lookups.
type Map struct {
	fset   *token.FileSet
	byLine map[lineKey][]Directive
	// emptyReported dedupes the "needs a reason" diagnostic per
	// directive comment.
	emptyReported map[token.Pos]bool
}

type lineKey struct {
	file string
	line int
}

// Collect gathers every //nyquist: directive in the package under
// analysis.
func Collect(pass *analysis.Pass) *Map {
	m := &Map{
		fset:          pass.Fset,
		byLine:        make(map[lineKey][]Directive),
		emptyReported: make(map[token.Pos]bool),
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if d, ok := parse(c); ok {
					p := pass.Fset.Position(c.Pos())
					k := lineKey{p.Filename, p.Line}
					m.byLine[k] = append(m.byLine[k], d)
				}
			}
		}
	}
	return m
}

// Suppressed reports whether a diagnostic at pos is suppressed by the
// named allow-* directive (same line, or a full-line comment on the
// line above). A suppression with an empty reason still suppresses —
// the author's intent is clear — but the missing reason is reported
// once at the directive itself.
func (m *Map) Suppressed(pass *analysis.Pass, pos token.Pos, name string) bool {
	p := m.fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, d := range m.byLine[lineKey{p.Filename, line}] {
			if d.Name != name {
				continue
			}
			if d.Reason == "" && !m.emptyReported[d.Pos] {
				m.emptyReported[d.Pos] = true
				pass.Reportf(pos, "nyquist:%s suppression needs a reason", name)
			}
			return true
		}
	}
	return false
}

// StdlibPackage reports whether the package under analysis is part of
// the Go standard library (its sources live under GOROOT/src). Under
// `go vet -vettool`, the driver runs every analyzer over the full
// dependency graph, standard library included; fact-exporting
// analyzers skip those packages so that a once-ever slow path inside,
// say, sync.Pool.Get or an error path inside strconv does not export
// an "allocates"/"retains" fact that poisons every caller. Standard
// library behavior is modeled by each analyzer's explicit deny-lists
// instead.
func StdlibPackage(pass *analysis.Pass) bool {
	if len(pass.Files) == 0 {
		return false
	}
	goroot := build.Default.GOROOT
	if goroot == "" {
		return false
	}
	f := pass.Fset.Position(pass.Files[0].Pos()).Filename
	src := filepath.Join(goroot, "src") + string(filepath.Separator)
	return strings.HasPrefix(f, src)
}

// InTestFile reports whether pos lies in a _test.go file. The
// invariants nyquistvet enforces are production contracts; tests
// deliberately violate them (allocation counters, hostile inputs) and
// are exempt wholesale.
func InTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
