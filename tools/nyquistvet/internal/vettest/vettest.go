// Package vettest is a self-contained analysistest replacement: it
// loads fixture packages from a testdata/src tree, type-checks them
// (resolving standard-library imports from GOROOT source), runs an
// analyzer — including its Requires chain and fact flow across fixture
// packages — and compares the diagnostics against `// want "regexp"`
// comments, analysistest-style.
//
// Why not golang.org/x/tools/go/analysis/analysistest: this module is
// built against the x/tools subset vendored inside the Go distribution
// (the repo builds with no module proxy), and that subset carries
// neither analysistest nor go/packages. The harness reimplements the
// fixture contract — testdata/src layout, `// want` expectations, one
// expectation per diagnostic per line — on go/types alone.
package vettest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads each named fixture package from dir/src/<path>, applies a
// (and its prerequisites) to every fixture package reachable from
// them, and checks the named packages' diagnostics against their
// `// want` comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	l := newLoader(dir)
	for _, p := range paths {
		if _, err := l.load(p); err != nil {
			t.Fatalf("loading fixture package %q: %v", p, err)
		}
	}
	facts := newFactStore()
	results := make(map[resultKey]interface{})
	diags := make(map[string][]analysis.Diagnostic)
	// l.order is dependency-first, so facts flow like a real build.
	for _, path := range l.order {
		lp := l.pkgs[path]
		runWithDeps(t, a, l, lp, facts, results, diags)
	}
	for _, p := range paths {
		check(t, l, l.pkgs[p], diags[p])
	}
}

type resultKey struct {
	a   *analysis.Analyzer
	pkg string
}

// runWithDeps runs a's Requires chain, then a itself, on one package.
func runWithDeps(t *testing.T, a *analysis.Analyzer, l *loader, lp *loadedPkg, facts *factStore, results map[resultKey]interface{}, diags map[string][]analysis.Diagnostic) {
	t.Helper()
	if _, done := results[resultKey{a, lp.path}]; done {
		return
	}
	for _, req := range a.Requires {
		runWithDeps(t, req, l, lp, facts, results, diags)
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       l.fset,
		Files:      lp.files,
		Pkg:        lp.pkg,
		TypesInfo:  lp.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   make(map[*analysis.Analyzer]interface{}),
		Report: func(d analysis.Diagnostic) {
			diags[lp.path] = append(diags[lp.path], d)
		},
		ReadFile: os.ReadFile,
	}
	for _, req := range a.Requires {
		pass.ResultOf[req] = results[resultKey{req, lp.path}]
	}
	facts.bind(pass)
	res, err := a.Run(pass)
	if err != nil {
		t.Fatalf("%s on %s: %v", a.Name, lp.path, err)
	}
	results[resultKey{a, lp.path}] = res
}

// loader resolves fixture packages from testdata/src, delegating
// everything else to a GOROOT source importer sharing the same fset.
type loader struct {
	fset   *token.FileSet
	srcdir string
	std    types.ImporterFrom
	pkgs   map[string]*loadedPkg
	order  []string // load-completion order: dependencies first
}

type loadedPkg struct {
	path  string
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

func newLoader(dir string) *loader {
	l := &loader{
		fset:   token.NewFileSet(),
		srcdir: filepath.Join(dir, "src"),
		pkgs:   make(map[string]*loadedPkg),
	}
	l.std = importer.ForCompiler(l.fset, "source", nil).(types.ImporterFrom)
	return l
}

// Import implements types.Importer for the checker's import callbacks.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir := filepath.Join(l.srcdir, path); isDir(dir) {
		lp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return l.std.ImportFrom(path, "", 0)
}

func isDir(p string) bool {
	fi, err := os.Stat(p)
	return err == nil && fi.IsDir()
}

// load parses and type-checks one fixture package (recursively loading
// fixture dependencies through Import).
func (l *loader) load(path string) (*loadedPkg, error) {
	if lp, ok := l.pkgs[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(l.srcdir, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	cfg := &types.Config{Importer: l}
	pkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	lp := &loadedPkg{path: path, pkg: pkg, files: files, info: info}
	l.pkgs[path] = lp
	l.order = append(l.order, path)
	return lp, nil
}

// factStore carries object and package facts across fixture packages,
// namespaced per fact type like a real driver.
type factStore struct {
	obj map[objFactKey]analysis.Fact
	pkg map[pkgFactKey]analysis.Fact
}

type objFactKey struct {
	obj types.Object
	typ reflect.Type
}

type pkgFactKey struct {
	pkg *types.Package
	typ reflect.Type
}

func newFactStore() *factStore {
	return &factStore{
		obj: make(map[objFactKey]analysis.Fact),
		pkg: make(map[pkgFactKey]analysis.Fact),
	}
}

func (s *factStore) bind(pass *analysis.Pass) {
	pass.ExportObjectFact = func(obj types.Object, f analysis.Fact) {
		s.obj[objFactKey{obj, reflect.TypeOf(f)}] = f
	}
	pass.ImportObjectFact = func(obj types.Object, f analysis.Fact) bool {
		got, ok := s.obj[objFactKey{obj, reflect.TypeOf(f)}]
		if ok {
			reflect.ValueOf(f).Elem().Set(reflect.ValueOf(got).Elem())
		}
		return ok
	}
	pass.ExportPackageFact = func(f analysis.Fact) {
		s.pkg[pkgFactKey{pass.Pkg, reflect.TypeOf(f)}] = f
	}
	pass.ImportPackageFact = func(pkg *types.Package, f analysis.Fact) bool {
		got, ok := s.pkg[pkgFactKey{pkg, reflect.TypeOf(f)}]
		if ok {
			reflect.ValueOf(f).Elem().Set(reflect.ValueOf(got).Elem())
		}
		return ok
	}
	pass.AllObjectFacts = func() []analysis.ObjectFact {
		var out []analysis.ObjectFact
		for k, f := range s.obj {
			out = append(out, analysis.ObjectFact{Object: k.obj, Fact: f})
		}
		return out
	}
	pass.AllPackageFacts = func() []analysis.PackageFact {
		var out []analysis.PackageFact
		for k, f := range s.pkg {
			out = append(out, analysis.PackageFact{Package: k.pkg, Fact: f})
		}
		return out
	}
}

// expectation is one `// want` pattern, positioned at a source line.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	text string
	hit  bool
}

var wantRe = regexp.MustCompile("(\"(?:[^\"\\\\]|\\\\.)*\")|(`[^`]*`)")

// check compares a package's diagnostics against its want comments.
func check(t *testing.T, l *loader, lp *loadedPkg, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range lp.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "// want ")
				if i < 0 {
					continue
				}
				pos := l.fset.Position(c.Pos())
				for _, m := range wantRe.FindAllString(text[i+len("// want "):], -1) {
					pat, err := strconv.Unquote(m)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, m, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, rx: rx, text: pat})
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := l.fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.text)
		}
	}
}
