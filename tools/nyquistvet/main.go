// Command nyquistvet is the repo's static-analysis gate, run via
//
//	go build -C tools/nyquistvet -o nyquistvet .
//	go vet -vettool=$(pwd)/tools/nyquistvet/nyquistvet ./...
//
// It bundles five repo-specific analyzers that machine-check the
// invariants DESIGN.md records in prose — hotpathalloc, unsafeview,
// lockdiscipline, metrichygiene, errdiscipline — together with the
// standard go vet suite (a -vettool replaces the default analyzers, so
// bundling them keeps one invocation a superset of plain `go vet`).
//
// The binary speaks the unitchecker protocol: the go command
// type-checks each package, writes a JSON description, and invokes
// this tool once per package; facts flow between packages through the
// build cache, which is what lets hotpathalloc and unsafeview reason
// across package boundaries.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"golang.org/x/tools/go/analysis/passes/appends"
	"golang.org/x/tools/go/analysis/passes/asmdecl"
	"golang.org/x/tools/go/analysis/passes/assign"
	"golang.org/x/tools/go/analysis/passes/atomic"
	"golang.org/x/tools/go/analysis/passes/bools"
	"golang.org/x/tools/go/analysis/passes/buildtag"
	"golang.org/x/tools/go/analysis/passes/cgocall"
	"golang.org/x/tools/go/analysis/passes/composite"
	"golang.org/x/tools/go/analysis/passes/copylock"
	"golang.org/x/tools/go/analysis/passes/defers"
	"golang.org/x/tools/go/analysis/passes/directive"
	"golang.org/x/tools/go/analysis/passes/errorsas"
	"golang.org/x/tools/go/analysis/passes/framepointer"
	"golang.org/x/tools/go/analysis/passes/httpresponse"
	"golang.org/x/tools/go/analysis/passes/ifaceassert"
	"golang.org/x/tools/go/analysis/passes/loopclosure"
	"golang.org/x/tools/go/analysis/passes/lostcancel"
	"golang.org/x/tools/go/analysis/passes/nilfunc"
	"golang.org/x/tools/go/analysis/passes/printf"
	"golang.org/x/tools/go/analysis/passes/shift"
	"golang.org/x/tools/go/analysis/passes/sigchanyzer"
	"golang.org/x/tools/go/analysis/passes/slog"
	"golang.org/x/tools/go/analysis/passes/stdmethods"
	"golang.org/x/tools/go/analysis/passes/stdversion"
	"golang.org/x/tools/go/analysis/passes/stringintconv"
	"golang.org/x/tools/go/analysis/passes/structtag"
	"golang.org/x/tools/go/analysis/passes/testinggoroutine"
	"golang.org/x/tools/go/analysis/passes/tests"
	"golang.org/x/tools/go/analysis/passes/timeformat"
	"golang.org/x/tools/go/analysis/passes/unmarshal"
	"golang.org/x/tools/go/analysis/passes/unreachable"
	"golang.org/x/tools/go/analysis/passes/unsafeptr"
	"golang.org/x/tools/go/analysis/passes/unusedresult"

	"repro/tools/nyquistvet/internal/analyzers/errdiscipline"
	"repro/tools/nyquistvet/internal/analyzers/hotpathalloc"
	"repro/tools/nyquistvet/internal/analyzers/lockdiscipline"
	"repro/tools/nyquistvet/internal/analyzers/metrichygiene"
	"repro/tools/nyquistvet/internal/analyzers/unsafeview"
)

func main() {
	unitchecker.Main(
		// Repo-specific invariants.
		hotpathalloc.Analyzer,
		unsafeview.Analyzer,
		lockdiscipline.Analyzer,
		metrichygiene.Analyzer,
		errdiscipline.Analyzer,

		// The standard `go vet` suite (replaced by -vettool, so
		// re-bundled here).
		appends.Analyzer,
		asmdecl.Analyzer,
		assign.Analyzer,
		atomic.Analyzer,
		bools.Analyzer,
		buildtag.Analyzer,
		cgocall.Analyzer,
		composite.Analyzer,
		copylock.Analyzer,
		defers.Analyzer,
		directive.Analyzer,
		errorsas.Analyzer,
		framepointer.Analyzer,
		httpresponse.Analyzer,
		ifaceassert.Analyzer,
		loopclosure.Analyzer,
		lostcancel.Analyzer,
		nilfunc.Analyzer,
		printf.Analyzer,
		shift.Analyzer,
		sigchanyzer.Analyzer,
		slog.Analyzer,
		stdmethods.Analyzer,
		stdversion.Analyzer,
		stringintconv.Analyzer,
		structtag.Analyzer,
		testinggoroutine.Analyzer,
		tests.Analyzer,
		timeformat.Analyzer,
		unmarshal.Analyzer,
		unreachable.Analyzer,
		unsafeptr.Analyzer,
		unusedresult.Analyzer,
	)
}
