package fleet

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/series"
)

// Differential property across the scenario catalog: on every regime's
// devices, the streaming estimator must agree with the batch estimator on
// the same window — same aliased verdict, same Nyquist rate to
// floating-point accuracy. The regimes are exactly the signal shapes
// (drift, bursts, flat quantized exports, rack correlation, phase
// offsets) that could expose a divergence between the sliding spectral
// state and a fresh FFT.
func TestStreamMatchesBatchOnEveryRegime(t *testing.T) {
	const window = 256
	for _, sp := range Scenarios() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			f := func(seed int64) bool {
				sc, err := BuildScenario(sp.Name, seed, 12)
				if err != nil {
					t.Fatal(err)
				}
				// Three devices per draw, spread across the fleet.
				for _, di := range []int{0, 5, 11} {
					d := sc.Fleet.Devices[di]
					iv := d.PollInterval.Seconds()
					off := sc.PhaseOffset[di]

					st, err := core.NewStreamEstimator(core.StreamConfig{
						Interval:      d.PollInterval,
						WindowSamples: window,
						EmitEvery:     1 << 30,
					})
					if err != nil {
						t.Fatal(err)
					}
					vals := make([]float64, window)
					for k := range vals {
						v := d.At(off + float64(k)*iv)
						vals[k] = v
						st.Push(v)
					}
					streamRes, streamErr := st.Current()

					batch, err := core.NewEstimator(core.EstimatorConfig{})
					if err != nil {
						t.Fatal(err)
					}
					u := &series.Uniform{Start: time.Unix(0, 0), Interval: d.PollInterval, Values: vals}
					batchRes, batchErr := batch.Estimate(u)

					if errors.Is(streamErr, core.ErrAliased) != errors.Is(batchErr, core.ErrAliased) {
						t.Logf("%s seed %d dev %s: aliased verdicts differ: stream %v vs batch %v",
							sp.Name, seed, d.ID, streamErr, batchErr)
						return false
					}
					if streamErr != nil && !errors.Is(streamErr, core.ErrAliased) {
						t.Fatalf("%s seed %d dev %s: stream: %v", sp.Name, seed, d.ID, streamErr)
					}
					if batchErr != nil && !errors.Is(batchErr, core.ErrAliased) {
						t.Fatalf("%s seed %d dev %s: batch: %v", sp.Name, seed, d.ID, batchErr)
					}
					if diff := math.Abs(streamRes.NyquistRate - batchRes.NyquistRate); diff > 1e-6*(1+batchRes.NyquistRate) {
						t.Logf("%s seed %d dev %s: Nyquist rates differ: stream %g vs batch %g",
							sp.Name, seed, d.ID, streamRes.NyquistRate, batchRes.NyquistRate)
						return false
					}
					if diff := math.Abs(streamRes.CutoffFreq - batchRes.CutoffFreq); diff > 1e-6*(1+batchRes.CutoffFreq) {
						t.Logf("%s seed %d dev %s: cut-offs differ: stream %g vs batch %g",
							sp.Name, seed, d.ID, streamRes.CutoffFreq, batchRes.CutoffFreq)
						return false
					}
				}
				return true
			}
			count := 6
			if testing.Short() {
				count = 2
			}
			if err := quick.Check(f, &quick.Config{MaxCount: count}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
