package fleet

import (
	"fmt"
	"testing"
)

// BenchmarkControllerRound measures closed-loop control throughput: one
// op is one full control round — poll every device for a window, stream
// the polls through per-device estimators, allocate the budget, retune
// retention. The custom metrics put it in operator units: devices and
// samples driven per second of wall clock. Results are recorded in
// BENCH_controller.json.
func BenchmarkControllerRound(b *testing.B) {
	for _, devices := range []int{64, 256, 1000} {
		b.Run(fmt.Sprintf("devices=%d", devices), func(b *testing.B) {
			sc, err := BuildScenario("diurnal", 31, devices)
			if err != nil {
				b.Fatal(err)
			}
			prod := 0.0
			for _, d := range sc.Fleet.Devices {
				prod += d.PollRate()
			}
			ctl, err := NewController(sc, ControllerConfig{
				BudgetHz: prod,
				// The audit is end-of-run reporting, not round work.
				QualityDevices: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ctl.Step(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			samplesPerRound := float64(devices * 64)
			b.ReportMetric(float64(devices)*float64(b.N)/b.Elapsed().Seconds(), "devices/s")
			b.ReportMetric(samplesPerRound*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
		})
	}
}
