package fleet_test

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/fleet"
	"repro/nyquist"
)

var t0 = time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)

func TestPublicFleetCensus(t *testing.T) {
	f, err := fleet.NewFleet(fleet.FleetConfig{Seed: 9, TotalPairs: 140})
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 140 {
		t.Fatalf("fleet size %d", f.Len())
	}
	var est nyquist.Estimator
	usable := 0
	for _, d := range f.Devices {
		u := d.Trace(t0, 0, fleet.Day)
		if res, err := est.Estimate(u); err == nil && !res.Aliased {
			usable++
		}
	}
	if usable < 100 {
		t.Fatalf("only %d/140 devices usable", usable)
	}
}

func TestPublicDeviceIsSampler(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d, err := fleet.NewDevice("x", fleet.Temperature, 1e-4, 5*time.Minute, rng, 11)
	if err != nil {
		t.Fatal(err)
	}
	// A fleet Device is a nyquist.Sampler: the detector can probe it.
	var _ nyquist.Sampler = d
	det := nyquist.NewDualRateDetector(nyquist.DualRateConfig{})
	v, _, err := det.Probe(d, 0, 86400, 1.0/300, 1.0/1100)
	if err != nil {
		t.Fatal(err)
	}
	if v.Aliased {
		t.Fatalf("300 s polls of a %v Hz device should not alias", d.TrueNyquist)
	}
}

func TestPublicPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d, err := fleet.NewDevice("link0", fleet.LinkUtil, 3e-4, 30*time.Second, rng, 21)
	if err != nil {
		t.Fatal(err)
	}
	store := fleet.NewStore(0)
	p := &fleet.StaticPoller{ID: d.ID, Target: d, Interval: 30 * time.Second, Model: fleet.DefaultCostModel()}
	cost, err := p.Run(store, t0, 0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Samples != 120 || store.Points() != 120 {
		t.Fatalf("cost %v, stored %d", cost, store.Points())
	}
}

func TestPublicExperimentDrivers(t *testing.T) {
	cfg := fleet.ExperimentConfig{Seed: 2, Pairs: 56}
	f1, err := fleet.RunFig1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f1.Render(), "Figure 1") {
		t.Fatal("fig1 render")
	}
	f2, err := fleet.RunFig2()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f2.Render(), "Figure 2") {
		t.Fatal("fig2 render")
	}
	f6, err := fleet.RunFig6(fleet.Fig6Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if f6.Fidelity == nil {
		t.Fatal("fig6 fidelity missing")
	}
}

func TestPublicMetricsEnumeration(t *testing.T) {
	ms := fleet.AllMetrics()
	if len(ms) != fleet.NumMetrics || fleet.NumMetrics != 14 {
		t.Fatalf("metrics = %d", len(ms))
	}
	p := fleet.ProfileFor(fleet.Temperature)
	if p.Name != "Temperature" || p.NyquistLo != 7.99e-7 {
		t.Fatalf("temperature profile = %+v", p)
	}
}
