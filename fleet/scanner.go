package fleet

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dcsim"
)

// ScanConfig parameterizes a fleet Scanner.
type ScanConfig struct {
	// Workers bounds the worker pool; zero selects GOMAXPROCS. A 10k-pair
	// fleet never holds more than Workers traces in memory at once.
	Workers int
	// Window is the stretch of signal time audited per device; zero
	// selects Day, the paper's per-datapoint trace length.
	Window time.Duration
	// Offset is where in signal time the audit window begins (seconds).
	Offset float64
	// WindowSamples, when positive, caps the streaming estimator's
	// sliding window; devices with more polls than this in the audit
	// window are estimated from their trailing window only. Zero analyzes
	// each device's full audit window (the batch-equivalent census).
	WindowSamples int
	// EnergyCutoff is the estimation threshold; zero selects the paper's
	// 99 %.
	EnergyCutoff float64
	// Buffer is the result channel's capacity; zero selects 2×Workers.
	Buffer int
}

func (c ScanConfig) withDefaults() ScanConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Window <= 0 {
		c.Window = Day
	}
	if c.Buffer <= 0 {
		c.Buffer = 2 * c.Workers
	}
	return c
}

// DeviceResult is the audit outcome for one metric/device pair, streamed
// by Scan as soon as the pair completes.
type DeviceResult struct {
	// Index is the pair's position in Fleet.Devices — the deterministic
	// ordering key aggregation sorts by.
	Index int
	// ID names the metric/device pair.
	ID string
	// Metric is the pair's metric family.
	Metric Metric
	// PollRate is the production sampling rate (hertz).
	PollRate float64
	// Samples is the number of polls analyzed.
	Samples int
	// Result is the Nyquist estimate (nil when Err is a non-aliased
	// failure; populated with Aliased set when Err is ErrAliased).
	Result *core.Result
	// Err is ErrAliased for under-sampled pairs, or the estimation error.
	Err error
}

// Scanner audits fleets concurrently: devices are sharded across a
// bounded worker pool, each worker streams a device's polls through a
// StreamEstimator (bounded memory per pair — no fleet-sized buffering),
// and per-device results arrive over a channel as they complete. Use
// ScanAll for the deterministic fleet-level aggregate.
type Scanner struct {
	cfg ScanConfig
}

// NewScanner validates cfg and returns a Scanner.
func NewScanner(cfg ScanConfig) (*Scanner, error) {
	if cfg.Workers < 0 {
		return nil, errors.New("fleet: negative worker count")
	}
	if cfg.Window < 0 {
		return nil, errors.New("fleet: negative scan window")
	}
	// Validate the estimation knobs once, up front.
	if _, err := core.NewEstimator(core.EstimatorConfig{EnergyCutoff: cfg.EnergyCutoff}); err != nil {
		return nil, err
	}
	return &Scanner{cfg: cfg.withDefaults()}, nil
}

// Scan audits every pair of the fleet and streams results in completion
// order (nondeterministic across runs; aggregate with ScanAll or sort by
// Index for stable output). The channel closes once every pair has been
// reported; the caller must drain it — to stop early, use ScanContext
// and cancel, or the pool's goroutines block forever on the abandoned
// channel.
func (s *Scanner) Scan(f *Fleet) <-chan DeviceResult {
	return s.ScanContext(context.Background(), f)
}

// ScanContext is Scan with cancellation: when ctx is done, workers stop
// picking up devices, in-flight sends are abandoned, and the channel
// closes without the remaining results.
func (s *Scanner) ScanContext(ctx context.Context, f *Fleet) <-chan DeviceResult {
	out := make(chan DeviceResult, s.cfg.Buffer)
	if f == nil || len(f.Devices) == 0 {
		close(out)
		return out
	}
	jobs := make(chan int)
	done := ctx.Done()
	var wg sync.WaitGroup
	for w := 0; w < s.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				select {
				case out <- s.scanOne(idx, f.Devices[idx]):
				case <-done:
					return
				}
			}
		}()
	}
	go func() {
		defer close(out)
	feed:
		for i := range f.Devices {
			select {
			case jobs <- i:
			case <-done:
				break feed
			}
		}
		close(jobs)
		wg.Wait()
	}()
	return out
}

// ScanAll drains a Scan and aggregates it into a fleet report whose
// contents are independent of worker count and scheduling.
func (s *Scanner) ScanAll(f *Fleet) (*ScanReport, error) {
	if f == nil || len(f.Devices) == 0 {
		return nil, errors.New("fleet: nothing to scan")
	}
	results := make([]DeviceResult, 0, len(f.Devices))
	for r := range s.Scan(f) {
		results = append(results, r)
	}
	return Aggregate(results, s.cfg.Window), nil
}

// scanOne streams one device's audit window through a fresh estimator.
func (s *Scanner) scanOne(idx int, d *dcsim.Device) DeviceResult {
	dr := DeviceResult{
		Index:    idx,
		ID:       d.ID,
		Metric:   d.Metric,
		PollRate: d.PollRate(),
	}
	n := int(s.cfg.Window / d.PollInterval)
	if n < 1 {
		n = 1
	}
	dr.Samples = n
	ws := n
	if s.cfg.WindowSamples > 0 && s.cfg.WindowSamples < ws {
		ws = s.cfg.WindowSamples
	}
	st, err := core.NewStreamEstimator(core.StreamConfig{
		Interval:      d.PollInterval,
		WindowSamples: ws,
		EnergyCutoff:  s.cfg.EnergyCutoff,
		// Updates are read once at the end; push emissions off the hot path.
		EmitEvery: 1 << 30,
	})
	if err != nil {
		dr.Err = err
		return dr
	}
	ivs := d.PollInterval.Seconds()
	for i := 0; i < n; i++ {
		st.Push(d.At(s.cfg.Offset + float64(i)*ivs))
	}
	dr.Result, dr.Err = st.Current()
	return dr
}

// MetricSummary is one metric family's row of a fleet report.
type MetricSummary struct {
	// Metric names the family.
	Metric string
	// Devices is the number of pairs audited.
	Devices int
	// Oversampled counts pairs polled above their estimated Nyquist rate.
	Oversampled int
	// Aliased counts pairs whose traces carried the aliased signature.
	Aliased int
	// MedianReduction is the family's median possible rate reduction.
	MedianReduction float64
}

// ScanReport is the fleet-level aggregate of a scan — the Fig. 1 / Fig. 4
// census rolled up per metric family and fleet-wide.
type ScanReport struct {
	// Window is the audited stretch of signal time.
	Window time.Duration
	// Pairs is the number of metric/device pairs audited.
	Pairs int
	// Aliased counts pairs with the aliased signature.
	Aliased int
	// Failed counts pairs whose estimation failed outright.
	Failed int
	// Metrics holds per-family summaries sorted by name.
	Metrics []MetricSummary
	// SamplesCollected is the polls the production rates took over the
	// window, summed fleet-wide.
	SamplesCollected float64
	// SamplesNeeded is the polls the estimated Nyquist rates would have
	// taken instead.
	SamplesNeeded float64
	// Ratios holds every clean pair's reduction ratio, sorted ascending.
	Ratios []float64
}

// Aggregate rolls streamed device results into a report. Results are
// keyed by Index before any order-sensitive statistic, so the output is
// identical however the scan's goroutines interleaved.
func Aggregate(results []DeviceResult, window time.Duration) *ScanReport {
	ordered := append([]DeviceResult(nil), results...)
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].Index < ordered[b].Index })
	if window <= 0 {
		window = Day
	}
	rep := &ScanReport{Window: window, Pairs: len(ordered)}
	type bucket struct {
		devices, over, aliased int
		ratios                 []float64
	}
	buckets := map[string]*bucket{}
	for _, r := range ordered {
		b := buckets[r.Metric.String()]
		if b == nil {
			b = &bucket{}
			buckets[r.Metric.String()] = b
		}
		b.devices++
		switch {
		case errors.Is(r.Err, core.ErrAliased):
			b.aliased++
			rep.Aliased++
			continue
		case r.Err != nil:
			rep.Failed++
			continue
		}
		if r.Result.Oversampled() {
			b.over++
		}
		b.ratios = append(b.ratios, r.Result.ReductionRatio)
		rep.Ratios = append(rep.Ratios, r.Result.ReductionRatio)
		rep.SamplesCollected += float64(r.Samples)
		rep.SamplesNeeded += r.Result.NyquistRate * window.Seconds()
	}
	names := make([]string, 0, len(buckets))
	for name := range buckets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := buckets[name]
		rep.Metrics = append(rep.Metrics, MetricSummary{
			Metric:          name,
			Devices:         b.devices,
			Oversampled:     b.over,
			Aliased:         b.aliased,
			MedianReduction: median(b.ratios),
		})
	}
	sort.Float64s(rep.Ratios)
	return rep
}

// PipelineReduction is SamplesCollected / SamplesNeeded: how much a
// Nyquist-aware collector shrinks the fleet's pipeline (0 when nothing
// clean was measured).
func (r *ScanReport) PipelineReduction() float64 {
	if r.SamplesNeeded <= 0 {
		return 0
	}
	return r.SamplesCollected / r.SamplesNeeded
}

// FracAbove returns the fraction of clean pairs reducible by at least x.
func (r *ScanReport) FracAbove(x float64) float64 {
	if len(r.Ratios) == 0 {
		return 0
	}
	// Ratios is sorted ascending; find the first element >= x.
	i := sort.SearchFloat64s(r.Ratios, x)
	return float64(len(r.Ratios)-i) / float64(len(r.Ratios))
}

// Render formats the report as the fleet-audit table.
func (r *ScanReport) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %7s %12s %9s %14s\n", "metric", "devices", "oversampled", "aliased", "median cut")
	for _, m := range r.Metrics {
		fmt.Fprintf(&sb, "%-20s %7d %11.0f%% %8d %13.0fx\n",
			m.Metric, m.Devices, 100*float64(m.Oversampled)/float64(m.Devices), m.Aliased, m.MedianReduction)
	}
	fmt.Fprintf(&sb, "\nfleet-wide: %d pairs audited over %v\n", r.Pairs, r.Window)
	if r.Failed > 0 {
		fmt.Fprintf(&sb, "  WARNING: %d pairs failed estimation and are excluded from the totals below\n", r.Failed)
	}
	fmt.Fprintf(&sb, "  samples collected at production rates: %.0f\n", r.SamplesCollected)
	fmt.Fprintf(&sb, "  samples actually needed:               %.0f\n", r.SamplesNeeded)
	if red := r.PipelineReduction(); red > 0 {
		fmt.Fprintf(&sb, "  => a Nyquist-aware collector shrinks the pipeline %.0fx\n", red)
	}
	fmt.Fprintf(&sb, "  pairs reducible >=100x: %.0f%%   >=1000x: %.0f%%\n",
		100*r.FracAbove(100), 100*r.FracAbove(1000))
	return sb.String()
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return s[len(s)/2]
}
