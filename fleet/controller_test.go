package fleet

import (
	"strings"
	"testing"
	"time"
)

func TestControllerConfigValidation(t *testing.T) {
	sc, err := BuildScenario("diurnal", 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	cases := []ControllerConfig{
		{Workers: -1},
		{SamplesPerRound: 8},
		{MinRate: 1, MaxRate: 0.5},
		{ConvergeQuorum: 1.5},
		{EnergyCutoff: 2},
	}
	for i, cfg := range cases {
		if _, err := NewController(sc, cfg); err == nil {
			t.Errorf("case %d: config %+v unexpectedly accepted", i, cfg)
		}
	}
	if _, err := NewController(nil, ControllerConfig{}); err == nil {
		t.Error("nil scenario unexpectedly accepted")
	}
}

// The loop must close for every catalog regime: rates converge within the
// scenario's bound, and the converged fleet polls below the production
// rate except where probing is the honest answer.
func TestControllerConvergesOnEveryRegime(t *testing.T) {
	for _, sp := range Scenarios() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			sc, err := BuildScenario(sp.Name, 11, 48)
			if err != nil {
				t.Fatal(err)
			}
			ctl, err := NewController(sc, ControllerConfig{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := ctl.Run(0)
			if err != nil {
				t.Fatal(err)
			}
			if rep.ConvergedRound == 0 {
				t.Fatalf("%s: did not converge within %d rounds", sp.Name, sp.MaxRounds)
			}
			if rep.ConvergedRound > sp.MaxRounds {
				t.Fatalf("%s: converged at round %d, spec bounds it at %d", sp.Name, rep.ConvergedRound, sp.MaxRounds)
			}
			if rep.Quality.Devices == 0 {
				t.Fatalf("%s: reconstruction audit ran on no devices", sp.Name)
			}
			if rep.Quality.MeanErr > sp.QualityBar {
				t.Errorf("%s: mean reconstruction error %.3f above the regime's quality bar %.3f",
					sp.Name, rep.Quality.MeanErr, sp.QualityBar)
			}
		})
	}
}

// The estimate→retain leg: converged estimates must reach the store's
// per-series retention policy.
func TestControllerRetunesRetention(t *testing.T) {
	sc, err := BuildScenario("diurnal", 5, 32)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewController(sc, ControllerConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Run(0); err != nil {
		t.Fatal(err)
	}
	store := ctl.Store()
	tuned := 0
	for _, d := range sc.Fleet.Devices {
		if store.NyquistRate(d.ID) > 0 {
			tuned++
		}
	}
	if tuned < len(sc.Fleet.Devices)/2 {
		t.Fatalf("only %d/%d series had their retention tuned by the loop", tuned, len(sc.Fleet.Devices))
	}
	// Every device's polls must have landed in the store.
	ids := store.IDs()
	if len(ids) != len(sc.Fleet.Devices) {
		t.Fatalf("store holds %d series, want %d", len(ids), len(sc.Fleet.Devices))
	}
}

// A budgeted run must keep the granted steady-state fleet rate within the
// budget (modulo the per-device liveness floor).
func TestControllerHonorsBudget(t *testing.T) {
	sc, err := BuildScenario("sweep", 9, 64)
	if err != nil {
		t.Fatal(err)
	}
	prod := 0.0
	for _, d := range sc.Fleet.Devices {
		prod += d.PollRate()
	}
	budget := prod / 8
	cfg := ControllerConfig{Workers: 4, BudgetHz: budget}
	ctl, err := NewController(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ctl.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	// MinRate floors can push the sum above the allocation by at most
	// devices*MinRate.
	slack := float64(len(sc.Fleet.Devices)) * (1.0 / 3600)
	if rep.FinalHz > budget+slack {
		t.Fatalf("final fleet rate %.4g Hz exceeds budget %.4g Hz (+%.4g floor slack)", rep.FinalHz, budget, slack)
	}
	for _, round := range rep.Rounds {
		if round.Quality <= 0 || round.Quality > 1 {
			t.Fatalf("round %d: budget plan quality %.3f outside (0, 1]", round.Round, round.Quality)
		}
	}
}

// Reports must not depend on worker count or goroutine interleaving.
func TestControllerDeterministicAcrossWorkerCounts(t *testing.T) {
	render := func(workers int) string {
		sc, err := BuildScenario("racks", 21, 48)
		if err != nil {
			t.Fatal(err)
		}
		ctl, err := NewController(sc, ControllerConfig{Workers: workers, InitialScan: true})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ctl.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Render() + ctl.CensusReport().Render()
	}
	a, b, c := render(1), render(4), render(13)
	if a != b || b != c {
		t.Fatalf("report differs across worker counts:\n--- workers=1\n%s\n--- workers=4\n%s\n--- workers=13\n%s", a, b, c)
	}
}

// The census must seed round-1 rates: a scanned start converges at least
// as fast as a blind start on the baseline regime.
func TestControllerInitialScanSeedsRates(t *testing.T) {
	run := func(scan bool) int {
		sc, err := BuildScenario("diurnal", 17, 48)
		if err != nil {
			t.Fatal(err)
		}
		ctl, err := NewController(sc, ControllerConfig{Workers: 4, InitialScan: scan})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ctl.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		if rep.ConvergedRound == 0 {
			return 1 << 10
		}
		return rep.ConvergedRound
	}
	blind, seeded := run(false), run(true)
	if seeded > blind {
		t.Errorf("census-seeded run converged at round %d, blind at %d — the census should not slow the loop", seeded, blind)
	}
	// And the census itself must be reported.
	sc, _ := BuildScenario("diurnal", 17, 16)
	ctl, err := NewController(sc, ControllerConfig{Workers: 2, InitialScan: true})
	if err != nil {
		t.Fatal(err)
	}
	if ctl.CensusReport() == nil || ctl.CensusReport().Pairs != 16 {
		t.Fatal("census report missing or incomplete after InitialScan")
	}
}

func TestControllerDeviceStatus(t *testing.T) {
	sc, err := BuildScenario("flatline", 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewController(sc, ControllerConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Run(0); err != nil {
		t.Fatal(err)
	}
	sts := ctl.Devices()
	if len(sts) != 16 {
		t.Fatalf("got %d device statuses, want 16", len(sts))
	}
	for _, st := range sts {
		if st.Cost.Samples == 0 {
			t.Errorf("%s: no samples billed", st.ID)
		}
		// Flatlined sensors must end at the liveness floor.
		if st.Rate > 1.0/3600+1e-12 {
			t.Errorf("%s: flatlined device still polling at %.4g Hz", st.ID, st.Rate)
		}
	}
}

// The acceptance bar: one process, one controller, >= 1000 devices, loop
// closed for every one of them within the scenario's round bound.
func TestControllerThousandDevices(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-device run skipped in short mode")
	}
	sc, err := BuildScenario("sweep", 3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	prod := 0.0
	for _, d := range sc.Fleet.Devices {
		prod += d.PollRate()
	}
	ctl, err := NewController(sc, ControllerConfig{
		BudgetHz:    prod * sc.Spec.BudgetFraction,
		InitialScan: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep, err := ctl.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Devices != 1000 {
		t.Fatalf("report covers %d devices, want 1000", rep.Devices)
	}
	if rep.ConvergedRound == 0 {
		t.Fatalf("1000-device fleet did not converge within %d rounds:\n%s", sc.Spec.MaxRounds, rep.Render())
	}
	if rep.Store.Appends == 0 || rep.TotalCost.Samples == 0 {
		t.Fatal("scale run did not account storage or cost")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Minute {
		t.Errorf("1000-device run took %v — the loop must sustain fleet scale", elapsed)
	}
	if !strings.Contains(rep.Render(), "1000 devices") {
		t.Error("render does not mention the fleet size")
	}
}
