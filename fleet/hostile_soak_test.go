package fleet

import (
	"sync"
	"testing"
	"time"
)

// The hostile soak: every wire-hostile regime at a non-golden seed, with
// readers hammering the store's query path while the harness writes
// through it — the interleaving the race detector must see across the
// eviction, reprobe and strict-append paths. The run must finish, keep
// its quorum, and stay inside the capacity budget.
func TestHostileSoakAllRegimes(t *testing.T) {
	devices := 96
	if testing.Short() {
		devices = 24
	}
	for _, sp := range Scenarios() {
		sp := sp
		if !sp.Hostile {
			continue
		}
		t.Run(sp.Name, func(t *testing.T) {
			t.Parallel()
			sc, err := BuildScenario(sp.Name, 29, devices)
			if err != nil {
				t.Fatal(err)
			}
			r, err := NewHostileRunner(sc, HostileConfig{})
			if err != nil {
				t.Fatal(err)
			}

			done := make(chan struct{})
			var readers sync.WaitGroup
			for g := 0; g < 3; g++ {
				readers.Add(1)
				go func(g int) {
					defer readers.Done()
					store := r.Store()
					est := r.Estimator()
					from := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
					to := from.Add(365 * 24 * time.Hour)
					for i := 0; ; i++ {
						select {
						case <-done:
							return
						default:
						}
						d := sc.Fleet.Devices[(i*3+g)%len(sc.Fleet.Devices)]
						_, _ = store.QueryRange(d.ID, from, to, 64)
						if i%16 == 0 {
							_ = store.Stats()
							_ = est.Len()
						}
					}
				}(g)
			}

			rep, runErr := r.Run()
			close(done)
			readers.Wait()
			if runErr != nil {
				t.Fatal(runErr)
			}
			if rep.ConvergedRound == 0 || !rep.FinalQuorumMet {
				t.Fatalf("%s: no converged quorum under reader load:\n%s", sp.Name, rep.Render())
			}
			if rep.LiveSeries > rep.MaxSeries {
				t.Fatalf("%s: %d live series above cap %d", sp.Name, rep.LiveSeries, rep.MaxSeries)
			}
		})
	}
}
