package fleet_test

import (
	"fmt"

	"repro/fleet"
)

// ExampleScanner audits a small synthetic fleet concurrently: per-device
// results stream over a channel as workers finish them, and the aggregate
// is deterministic however the scan was scheduled.
func ExampleScanner() {
	f, err := fleet.NewFleet(fleet.FleetConfig{Seed: 7, TotalPairs: 56})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sc, err := fleet.NewScanner(fleet.ScanConfig{Workers: 4})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rep, err := sc.ScanAll(f)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("pairs audited: %d\n", rep.Pairs)
	fmt.Printf("aliased pairs: %d\n", rep.Aliased)
	fmt.Printf("pipeline reduction: %.0fx\n", rep.PipelineReduction())
	// Output:
	// pairs audited: 56
	// aliased pairs: 10
	// pipeline reduction: 7x
}
