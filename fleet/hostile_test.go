package fleet

import (
	"strings"
	"testing"
)

// Every hostile regime must clear its catalog bars: convergence within
// MaxRounds, a final quorum of warm+clean estimates, median quality under
// the spec's bar, and the estimator population within its capacity
// budget. On top of the shared bars, each regime must demonstrably
// exercise the failure mode it is named for — a cardinality regime that
// never evicts, or a backfill regime whose store rejects nothing, would
// be a green test over a dead scenario.
func TestHostileRegimeBars(t *testing.T) {
	ran := 0
	for _, sp := range Scenarios() {
		sp := sp
		if !sp.Hostile {
			continue
		}
		ran++
		t.Run(sp.Name, func(t *testing.T) {
			sc, err := BuildScenario(sp.Name, 101, 48)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := RunHostile(sc, HostileConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.ConvergedRound < 1 || rep.ConvergedRound > sp.MaxRounds {
				t.Fatalf("%s: converged round %d outside [1, %d]:\n%s",
					sp.Name, rep.ConvergedRound, sp.MaxRounds, rep.Render())
			}
			if !rep.FinalQuorumMet {
				t.Fatalf("%s: final round lost the warm+clean quorum:\n%s", sp.Name, rep.Render())
			}
			if rep.QualityIDs == 0 {
				t.Fatalf("%s: quality audit covered no ids", sp.Name)
			}
			if rep.MedianRelErr > sp.QualityBar {
				t.Fatalf("%s: median rel err %.1f%% above the regime's %.0f%% bar:\n%s",
					sp.Name, 100*rep.MedianRelErr, 100*sp.QualityBar, rep.Render())
			}
			if rep.LiveSeries > rep.MaxSeries {
				t.Fatalf("%s: %d live series above the MaxSeries cap %d",
					sp.Name, rep.LiveSeries, rep.MaxSeries)
			}

			switch sp.Name {
			case "cardinality":
				// The cap must be a real constraint: several times more
				// distinct ids than slots, with both eviction and
				// cap-rejection doing visible work.
				if rep.DistinctIDs < 3*rep.MaxSeries {
					t.Errorf("cap not under pressure: %d distinct ids vs cap %d",
						rep.DistinctIDs, rep.MaxSeries)
				}
				if rep.Evicted == 0 {
					t.Error("LRU eviction never fired")
				}
				if rep.EstimatorRejected == 0 {
					t.Error("MaxSeries cap never rejected a series")
				}
			case "backfill":
				if rep.Late == 0 {
					t.Error("no late samples on the wire")
				}
				if rep.StoreRejected != rep.Late {
					t.Errorf("truthful rejection accounting broken: store rejected %d, wire shipped %d late",
						rep.StoreRejected, rep.Late)
				}
			case "clockskew":
				// The coordinated step must force (nearly) every device
				// through an interval re-probe, and a forward step must
				// never trip the strict-append store.
				if rep.ReprobedIDs < 43 {
					t.Errorf("only %d of 48 ids re-probed after the clock step", rep.ReprobedIDs)
				}
				if rep.StoreRejected != 0 {
					t.Errorf("forward clock step caused %d store rejections", rep.StoreRejected)
				}
			case "podchurn":
				if rep.Evicted == 0 {
					t.Error("dead epochs never aged out of the estimator")
				}
				if rep.StoreSeries != rep.DistinctIDs {
					t.Errorf("store kept %d series for %d distinct wire ids", rep.StoreSeries, rep.DistinctIDs)
				}
			}
		})
	}
	if ran < 4 {
		t.Fatalf("only %d hostile regimes in the catalog, want >= 4", ran)
	}
}

// Hostile runs must be deterministic in (name, seed, devices): two fresh
// runs render byte-identical reports, and changing the seed changes the
// traffic.
func TestHostileRunDeterministic(t *testing.T) {
	render := func(seed int64) string {
		t.Helper()
		sc, err := BuildScenario("cardinality", seed, 24)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := RunHostile(sc, HostileConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Render()
	}
	a, b := render(7), render(7)
	if a != b {
		t.Fatalf("same (name, seed, devices) rendered different reports:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	if c := render(8); strings.Split(a, "\n")[0] == "" || a == c {
		t.Fatal("seed 7 and seed 8 rendered identical reports")
	}
}
