// Package fleet is the public API of the synthetic-datacenter simulation:
// a deterministic population of monitored devices with known ground-truth
// Nyquist rates, the monitoring pipeline (pollers, store, cost model) that
// measures them, and the drivers that regenerate every figure of the
// paper's evaluation.
//
// The simulation substitutes for the paper's proprietary production traces
// (see DESIGN.md); its per-metric Nyquist-rate distributions are
// calibrated to the ranges the paper reports, so censuses over the fleet
// reproduce the shape of Figs. 1, 4 and 5.
package fleet

import (
	"repro/internal/dcsim"
	"repro/internal/experiments"
	"repro/internal/monitor"
	"repro/internal/tsdb"
)

// Re-exported simulation types.
type (
	// Device is one simulated metric/device pair.
	Device = dcsim.Device
	// Metric identifies a metric family (Fig. 5's fourteen).
	Metric = dcsim.Metric
	// Profile describes a metric family's statistical character.
	Profile = dcsim.Profile
	// Fleet is a deterministic device population.
	Fleet = dcsim.Fleet
	// FleetConfig parameterizes fleet generation.
	FleetConfig = dcsim.FleetConfig
	// Burst is a transient high-frequency event (link flap, incident).
	Burst = dcsim.Burst
	// BandLimited is a strictly band-limited test signal.
	BandLimited = dcsim.BandLimited
	// Scenario is a built workload regime from the scenario catalog.
	Scenario = dcsim.Scenario
	// ScenarioSpec names and bounds one catalog regime.
	ScenarioSpec = dcsim.ScenarioSpec
	// HostileSpec carries a hostile regime's wire-transform knobs.
	HostileSpec = dcsim.HostileSpec
	// WireSample is one sample of generated ingest traffic.
	WireSample = dcsim.WireSample
	// WireConfig parameterizes a WireGen.
	WireConfig = dcsim.WireConfig
	// WireGen turns a scenario into deterministic wire traffic.
	WireGen = dcsim.WireGen
)

// NewWireGen builds the wire-traffic generator for a scenario.
var NewWireGen = dcsim.NewWireGen

// DefaultSamplesPerRound is the per-device wire round size hostile bars
// are calibrated against.
const DefaultSamplesPerRound = dcsim.DefaultSamplesPerRound

// BuildScenario builds a named workload regime deterministically.
var BuildScenario = dcsim.BuildScenario

// Scenarios returns the scenario catalog specs in catalog order.
var Scenarios = dcsim.Scenarios

// ScenarioNames returns the catalog keys, sorted.
var ScenarioNames = dcsim.ScenarioNames

// ErrUnknownScenario reports a scenario name outside the catalog.
var ErrUnknownScenario = dcsim.ErrUnknownScenario

// The fourteen metric families of the paper's Fig. 5.
const (
	OutboundDiscards = dcsim.OutboundDiscards
	UnicastDrops     = dcsim.UnicastDrops
	MulticastDrops   = dcsim.MulticastDrops
	MulticastBytes   = dcsim.MulticastBytes
	UnicastBytes     = dcsim.UnicastBytes
	InboundDiscards  = dcsim.InboundDiscards
	MemoryUsage      = dcsim.MemoryUsage
	PeakEgressBW     = dcsim.PeakEgressBW
	PeakIngressBW    = dcsim.PeakIngressBW
	LinkUtil         = dcsim.LinkUtil
	LossyPaths       = dcsim.LossyPaths
	CPUUtil5pct      = dcsim.CPUUtil5pct
	Temperature      = dcsim.Temperature
	FCSErrors        = dcsim.FCSErrors
)

// NumMetrics is the number of metric families.
const NumMetrics = dcsim.NumMetrics

// DiurnalFreq is one cycle per day in hertz.
const DiurnalFreq = dcsim.DiurnalFreq

// Day is the paper's per-datapoint trace length.
const Day = dcsim.Day

// NewFleet builds the synthetic datacenter population.
var NewFleet = dcsim.NewFleet

// NewDevice builds a single simulated device.
var NewDevice = dcsim.NewDevice

// NewBandLimited builds a band-limited test signal.
var NewBandLimited = dcsim.NewBandLimited

// NewHarmonicSeries builds a diurnal-harmonic test signal.
var NewHarmonicSeries = dcsim.NewHarmonicSeries

// AllMetrics returns every metric family in Fig. 5 order.
var AllMetrics = dcsim.AllMetrics

// ProfileFor returns a metric family's profile.
var ProfileFor = dcsim.ProfileFor

// Re-exported storage-engine types (the sharded multi-resolution tsdb
// behind Store; see internal/tsdb).
type (
	// StoreConfig parameterizes a tiered store: shard count plus the
	// multi-resolution retention policy.
	StoreConfig = tsdb.Config
	// RetentionConfig is the per-series Nyquist-aware retention policy.
	RetentionConfig = tsdb.RetentionConfig
	// StoreStats is the engine-wide operator report.
	StoreStats = tsdb.Stats
	// SeriesStats is one series' retention state.
	SeriesStats = tsdb.SeriesStats
	// TierStats is one downsampled tier's state.
	TierStats = tsdb.TierStats
	// QueryResult is a tier-stitched range-query answer.
	QueryResult = tsdb.QueryResult
	// TierSlice records one tier's contribution to a query.
	TierSlice = tsdb.TierSlice
	// AggPoint is a min/max/mean bucket summary surfaced by a query.
	AggPoint = tsdb.AggPoint
)

// NewTieredStore returns a store with explicit sharding and retention.
var NewTieredStore = monitor.NewTieredStore

// Re-exported monitoring-pipeline types.
type (
	// Store is a concurrency-safe in-memory time-series database backed
	// by the sharded multi-resolution tsdb engine.
	Store = monitor.Store
	// StaticPoller samples at a fixed interval (today's practice).
	StaticPoller = monitor.StaticPoller
	// AdaptivePoller samples with the paper's dynamic method (§4.2).
	AdaptivePoller = monitor.AdaptivePoller
	// AdaptiveResult reports an adaptive polling run.
	AdaptiveResult = monitor.AdaptiveResult
	// CostModel prices samples through the pipeline.
	CostModel = monitor.CostModel
	// Cost is an accumulated resource bill.
	Cost = monitor.Cost
	// Comparison is a static-versus-adaptive head-to-head.
	Comparison = monitor.Comparison
	// CompareConfig parameterizes Compare.
	CompareConfig = monitor.CompareConfig
)

// Re-exported budget-allocation types (the title's cost/quality trade).
type (
	// Demand is one metric's sampling requirement.
	Demand = monitor.Demand
	// Allocation is the budgeter's decision for one metric.
	Allocation = monitor.Allocation
	// Plan is a complete budget allocation.
	Plan = monitor.Plan
	// FrontierPoint is one point of the cost/quality curve.
	FrontierPoint = monitor.FrontierPoint
)

// Archiver implements the paper's a-posteriori path: poll fast, estimate
// per window, store only Nyquist-rate samples (§4).
type Archiver = monitor.Archiver

// ArchiverConfig parameterizes an Archiver.
type ArchiverConfig = monitor.ArchiverConfig

// NewArchiver returns an archiver writing to a store.
var NewArchiver = monitor.NewArchiver

// Manager runs adaptive sampling over a fleet concurrently.
type Manager = monitor.Manager

// ManagerConfig parameterizes a Manager.
type ManagerConfig = monitor.ManagerConfig

// ManagedTarget is one fleet member under adaptive control.
type ManagedTarget = monitor.ManagedTarget

// FleetReport aggregates a fleet-wide adaptive run.
type FleetReport = monitor.FleetReport

// NewManager validates a config and returns a fleet manager.
var NewManager = monitor.NewManager

// RateFromCounter differences a cumulative counter trace into the rate
// signal spectral analysis operates on.
var RateFromCounter = dcsim.RateFromCounter

// Allocate distributes a global sample budget across metric demands.
var Allocate = monitor.Allocate

// Frontier sweeps the budget and returns the cost/quality curve whose
// knee is the sweet spot.
var Frontier = monitor.Frontier

// NewStore returns an empty time-series store.
var NewStore = monitor.NewStore

// DefaultCostModel returns the standard sample pricing.
var DefaultCostModel = monitor.DefaultCostModel

// Compare runs static and adaptive pollers head-to-head.
var Compare = monitor.Compare

// Pipeline errors.
var (
	// ErrNoSeries marks queries for unknown series.
	ErrNoSeries = monitor.ErrNoSeries
	// ErrStoreFull marks writes beyond a bounded store's capacity.
	//
	// Deprecated: the tsdb-backed store degrades resolution instead of
	// failing; no code path returns it any more.
	ErrStoreFull = monitor.ErrStoreFull
)

// Re-exported experiment drivers (one per paper figure; each result has a
// Render method producing the text form recorded in EXPERIMENTS.md).
type (
	// ExperimentConfig parameterizes the fleet-census experiments.
	ExperimentConfig = experiments.FleetConfig
	// Fig1Result is the over-sampling census (Fig. 1).
	Fig1Result = experiments.Fig1Result
	// Fig2Result is the aliasing-geometry demonstration (Fig. 2).
	Fig2Result = experiments.Fig2Result
	// Fig3Result is the two-tone aliasing demonstration (Fig. 3).
	Fig3Result = experiments.Fig3Result
	// Fig4Result is the reduction-ratio CDFs (Fig. 4).
	Fig4Result = experiments.Fig4Result
	// Fig5Result is the per-metric Nyquist box plot (Fig. 5).
	Fig5Result = experiments.Fig5Result
	// Fig6Result is the temperature round trip (Fig. 6).
	Fig6Result = experiments.Fig6Result
	// Fig7Result is the moving-window rate scan (Fig. 7).
	Fig7Result = experiments.Fig7Result
)

// RunFig1 regenerates Figure 1.
var RunFig1 = experiments.RunFig1

// RunFig2 regenerates Figure 2's demonstration.
var RunFig2 = experiments.RunFig2

// RunFig3 regenerates Figure 3.
var RunFig3 = experiments.RunFig3

// RunFig4 regenerates Figure 4.
var RunFig4 = experiments.RunFig4

// RunFig5 regenerates Figure 5.
var RunFig5 = experiments.RunFig5

// RunFig6 regenerates Figure 6.
var RunFig6 = experiments.RunFig6

// RunFig7 regenerates Figure 7.
var RunFig7 = experiments.RunFig7

// RunDualRate regenerates the §4.1 detector sweep.
var RunDualRate = experiments.RunDualRate

// RunAdaptive regenerates the §4.2 static-versus-adaptive comparison.
var RunAdaptive = experiments.RunAdaptive

// RunCutoffAblation sweeps the energy cut-off (DESIGN.md choice 1).
var RunCutoffAblation = experiments.RunCutoffAblation

// RunBudgetFrontier traces the fleet-wide cost/quality frontier (the
// title experiment).
var RunBudgetFrontier = experiments.RunBudgetFrontier

// RunErgodicity measures fleet ergodicity and canary horizons (§6).
var RunErgodicity = experiments.RunErgodicity

// RunWindowAblation sweeps the analysis window length (resolution floor).
var RunWindowAblation = experiments.RunWindowAblation

// BudgetFrontierResult is the cost/quality frontier data.
type BudgetFrontierResult = experiments.BudgetFrontierResult

// ErgodicityResult is the §6 ergodicity exploration data.
type ErgodicityResult = experiments.ErgodicityResult

// WindowAblation is the window-length sweep data.
type WindowAblation = experiments.WindowAblation

// RunMemoryAblation compares the §4.2 adaptive loop with and without
// requirement memory on recurring fast episodes.
var RunMemoryAblation = experiments.RunMemoryAblation

// MemoryAblation is the §4.2 memory ablation data.
type MemoryAblation = experiments.MemoryAblation

// RunEstimatorAblation scores estimator variants against ground truth.
var RunEstimatorAblation = experiments.RunEstimatorAblation

// EstimatorAblation is the estimator-variant comparison data.
type EstimatorAblation = experiments.EstimatorAblation

// RunHeadroomAblation sweeps §4.2's headroom factor against a
// first-of-its-kind event.
var RunHeadroomAblation = experiments.RunHeadroomAblation

// HeadroomAblation is the headroom sweep data.
type HeadroomAblation = experiments.HeadroomAblation

// FlapTrain builds the bursts of a periodically recurring event.
var FlapTrain = dcsim.FlapTrain

// Fig6Config parameterizes the Fig. 6 experiment.
type Fig6Config = experiments.Fig6Config

// Fig7Config parameterizes the Fig. 7 experiment.
type Fig7Config = experiments.Fig7Config
