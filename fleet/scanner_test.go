package fleet

import (
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// TestScannerMatchesBatchEstimates cross-checks the scanner's streaming
// results against direct batch estimation of the same traces.
func TestScannerMatchesBatchEstimates(t *testing.T) {
	f, err := NewFleet(FleetConfig{Seed: 7, TotalPairs: 42})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewScanner(ScanConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)
	var batch core.Estimator
	checked := 0
	for r := range sc.Scan(f) {
		d := f.Devices[r.Index]
		if d.ID != r.ID {
			t.Fatalf("index %d: scanner ID %s, fleet ID %s", r.Index, r.ID, d.ID)
		}
		want, wantErr := batch.Estimate(d.Trace(start, 0, Day))
		if errors.Is(r.Err, core.ErrAliased) != errors.Is(wantErr, core.ErrAliased) {
			t.Fatalf("%s: scanner err %v, batch err %v", r.ID, r.Err, wantErr)
		}
		if wantErr != nil {
			continue
		}
		if diff := math.Abs(r.Result.NyquistRate - want.NyquistRate); diff > 1e-6*(1+want.NyquistRate) {
			t.Fatalf("%s: scanner rate %g, batch rate %g", r.ID, r.Result.NyquistRate, want.NyquistRate)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no clean pairs cross-checked")
	}
}

// TestScannerDeterministicAcrossWorkerCounts scans a 1k-pair fleet with
// different pool sizes and requires bit-identical aggregate reports —
// the scheduling-independence contract.
func TestScannerDeterministicAcrossWorkerCounts(t *testing.T) {
	f, err := NewFleet(FleetConfig{Seed: 3, TotalPairs: 1000})
	if err != nil {
		t.Fatal(err)
	}
	var reports []*ScanReport
	for _, workers := range []int{1, 4, 16} {
		sc, err := NewScanner(ScanConfig{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sc.ScanAll(f)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Pairs != 1000 {
			t.Fatalf("workers=%d: %d pairs reported", workers, rep.Pairs)
		}
		reports = append(reports, rep)
	}
	for i := 1; i < len(reports); i++ {
		if !reflect.DeepEqual(reports[0], reports[i]) {
			t.Fatalf("aggregate differs between worker counts:\n%s\nvs\n%s",
				reports[0].Render(), reports[i].Render())
		}
	}
	// The synthetic fleet plants ~11% under-sampled pairs; the census
	// must find a substantial aliased population and a big reduction.
	rep := reports[0]
	if rep.Aliased == 0 {
		t.Fatal("census found no aliased pairs in a fleet seeded with them")
	}
	if rep.PipelineReduction() < 2 {
		t.Fatalf("pipeline reduction %.1fx, want > 2x on an oversampled fleet", rep.PipelineReduction())
	}
}

// TestScannerStreamsEveryPair checks the channel delivers exactly one
// result per pair with indices covering the fleet.
func TestScannerStreamsEveryPair(t *testing.T) {
	f, err := NewFleet(FleetConfig{Seed: 5, TotalPairs: 100})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewScanner(ScanConfig{Workers: 8, Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, f.Len())
	for r := range sc.Scan(f) {
		if r.Index < 0 || r.Index >= len(seen) {
			t.Fatalf("result index %d out of range", r.Index)
		}
		if seen[r.Index] {
			t.Fatalf("pair %d reported twice", r.Index)
		}
		seen[r.Index] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("pair %d never reported", i)
		}
	}
}

// TestScannerBoundedWindow checks the sliding-window cap still produces a
// usable census when devices have far more polls than the cap.
func TestScannerBoundedWindow(t *testing.T) {
	f, err := NewFleet(FleetConfig{Seed: 11, TotalPairs: 28})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewScanner(ScanConfig{Workers: 4, WindowSamples: 512})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sc.ScanAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pairs != 28 {
		t.Fatalf("%d pairs reported", rep.Pairs)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d pairs failed under the window cap", rep.Failed)
	}
}

// TestAggregateSurfacesFailures checks failed pairs are counted and
// called out in the rendered report instead of disappearing silently.
func TestAggregateSurfacesFailures(t *testing.T) {
	results := []DeviceResult{
		{Index: 0, ID: "a", Metric: Temperature, Samples: 100,
			Result: &core.Result{NyquistRate: 0.001, SampleRate: 0.01, ReductionRatio: 10}},
		{Index: 1, ID: "b", Metric: Temperature, Err: core.ErrTooShort},
	}
	rep := Aggregate(results, Day)
	if rep.Failed != 1 {
		t.Fatalf("failed = %d, want 1", rep.Failed)
	}
	if !strings.Contains(rep.Render(), "WARNING: 1 pairs failed") {
		t.Fatalf("render does not surface failures:\n%s", rep.Render())
	}
}

// TestScannerContextCancel checks an abandoned scan tears down: after
// cancellation the channel closes without delivering the whole fleet.
func TestScannerContextCancel(t *testing.T) {
	f, err := NewFleet(FleetConfig{Seed: 5, TotalPairs: 400})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewScanner(ScanConfig{Workers: 2, Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch := sc.ScanContext(ctx, f)
	got := 0
	for range ch {
		got++
		if got == 10 {
			cancel()
		}
	}
	// The channel must have closed (or the range above would hang); a
	// cancelled scan must not deliver the full fleet.
	if got >= f.Len() {
		t.Fatalf("cancelled scan still delivered all %d results", got)
	}
	cancel()
}

// TestScannerValidation exercises the config and input error paths.
func TestScannerValidation(t *testing.T) {
	if _, err := NewScanner(ScanConfig{Workers: -1}); err == nil {
		t.Fatal("negative workers accepted")
	}
	if _, err := NewScanner(ScanConfig{EnergyCutoff: 2}); err == nil {
		t.Fatal("bad cutoff accepted")
	}
	sc, err := NewScanner(ScanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.ScanAll(nil); err == nil {
		t.Fatal("nil fleet accepted")
	}
	if _, err := sc.ScanAll(&Fleet{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
	// Scan on an empty fleet must still close its channel.
	for range sc.Scan(&Fleet{}) {
		t.Fatal("empty fleet produced a result")
	}
}
