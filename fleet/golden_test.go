package fleet

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "regenerate golden files under testdata/")

// goldenRun is the pinned configuration: every catalog scenario, seed 101,
// 48 devices, production-rate budget scaled by the regime's fraction, a
// Scanner census seeding round 1. Any behavioural change to the scenario
// builders, the scanner, the estimator, the allocator, the controller or
// the store's accounting shows up as a golden diff — the point: this is
// the regression net over the whole estimate→poll→retain artery.
func goldenRun(t *testing.T, name string) string {
	t.Helper()
	sc, err := BuildScenario(name, 101, 48)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Spec.Hostile {
		rep, err := RunHostile(sc, HostileConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Render()
	}
	prod := 0.0
	for _, d := range sc.Fleet.Devices {
		prod += d.PollRate()
	}
	ctl, err := NewController(sc, ControllerConfig{
		Workers:     4,
		BudgetHz:    prod * sc.Spec.BudgetFraction,
		InitialScan: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ctl.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("=== scanner census (window %v) ===\n%s\n=== closed loop ===\n%s",
		6*time.Hour, ctl.CensusReport().Render(), rep.Render())
}

func TestScenarioGoldenReports(t *testing.T) {
	for _, sp := range Scenarios() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			got := goldenRun(t, sp.Name)
			path := filepath.Join("testdata", "scenario_"+sp.Name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run: go test ./fleet -run TestScenarioGoldenReports -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("report for %q drifted from %s.\nIf the change is intentional, regenerate with -update.\n--- got ---\n%s\n--- want ---\n%s",
					sp.Name, path, got, want)
			}
		})
	}
}
