package fleet

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/series"
	"repro/internal/tsdb"
)

// Controller closes the paper's loop over a whole fleet: poll every
// device at its current rate, stream the polls through a per-device
// estimator, turn the estimates into next-round poll rates under a
// fleet-wide sample budget (monitor.Allocate), and retune each series'
// storage retention (tsdb SetNyquist) — estimate → poll rate → retention,
// round after round, until rates stop moving.
//
// One Controller instance drives one scenario run. Rounds are driven by
// Step (one control round) or Run (rounds until convergence or the
// scenario's bound); Report aggregates the run deterministically, so two
// runs with the same configuration produce byte-identical reports however
// the worker pool interleaved.
type Controller struct {
	cfg      ControllerConfig
	scenario *Scenario
	store    *Store

	// Per-device control state, indexed like Fleet.Devices.
	rate      []float64 // current granted poll rate (hertz)
	cursor    []float64 // per-device signal-time cursor (seconds)
	cost      []monitor.Cost
	converged []bool
	aliased   []bool
	streak    []int // consecutive aliased rounds per device

	round   int
	rounds  []RoundSummary
	censusC monitor.Cost // bill of the initial Scanner census, if any
	scanRep *ScanReport
}

// ControllerConfig parameterizes a closed-loop run.
type ControllerConfig struct {
	// Workers bounds the per-round worker pool; zero selects GOMAXPROCS.
	Workers int
	// SamplesPerRound is how many polls each device takes per control
	// round (also the estimation window); zero selects 64, the minimum
	// is 16 (the estimator's floor).
	SamplesPerRound int
	// EnergyCutoff is the estimation threshold; zero selects 0.90, the
	// robust choice for the short windows a control round sees (the
	// paper's 99 % keeps chasing the measurement-noise floor there —
	// the same trade the §4.2 adaptive loop makes).
	EnergyCutoff float64
	// AliasPersistence is how many consecutive aliased rounds a device
	// must show before its rate probes upward; zero selects 2 (a
	// one-window aliased blip is usually noise — StreamUpdate's
	// AliasStreak reasoning applied across rounds).
	AliasPersistence int
	// Headroom multiplies estimated Nyquist rates into granted poll
	// rates; zero selects 1.2 (polling exactly at the critical rate
	// leaves the top component ambiguous).
	Headroom float64
	// BudgetHz caps the fleet-wide steady-state sample rate; each
	// round's desired rates are passed through monitor.Allocate against
	// it. Zero disables budgeting (every desire is granted).
	BudgetHz float64
	// MinRate and MaxRate clamp per-device grants, in hertz. Zeros
	// select 1/3600 (one poll per hour — the floor operators keep for
	// liveness) and 1 (one per second).
	MinRate, MaxRate float64
	// ConvergeTol is the relative rate change below which a device
	// counts as converged for the round; zero selects 0.05.
	ConvergeTol float64
	// ConvergeQuorum is the fraction of devices that must hold within
	// tolerance for the fleet to count as converged; zero selects 0.9
	// (regimes with recurring transients — microbursts — honestly never
	// settle their last few devices, which keep probing as §4.2 says
	// they should). Values outside (0, 1] are rejected.
	ConvergeQuorum float64
	// InitialScan seeds round-1 rates from a Scanner census at the
	// production rates instead of starting blind, wiring the PR-1
	// scanner into the loop. The census polls are billed.
	InitialScan bool
	// ScanWindow is the census audit window when InitialScan is set;
	// zero selects 6 hours of signal time.
	ScanWindow time.Duration
	// Store receives every polled sample and the retention retunes;
	// nil selects a fresh sharded store with bounded raw rings.
	Store *Store
	// Model prices samples; the zero value selects DefaultCostModel.
	Model monitor.CostModel
	// Start anchors stored sample timestamps; zero selects the
	// pipeline's standard epoch.
	Start time.Time
	// QualityDevices is how many devices the final reconstruction-error
	// audit samples (deterministically strided across the fleet); zero
	// selects 32, negative disables the audit.
	QualityDevices int
}

func (c ControllerConfig) withDefaults() (ControllerConfig, error) {
	if c.Workers < 0 {
		return c, errors.New("fleet: negative worker count")
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.SamplesPerRound == 0 {
		c.SamplesPerRound = 64
	}
	if c.SamplesPerRound < 16 {
		return c, errors.New("fleet: SamplesPerRound below the estimator's 16-sample floor")
	}
	if c.EnergyCutoff == 0 {
		c.EnergyCutoff = 0.90
	}
	if c.AliasPersistence <= 0 {
		c.AliasPersistence = 2
	}
	if c.Headroom <= 1 {
		c.Headroom = 1.2
	}
	if c.MinRate <= 0 {
		c.MinRate = 1.0 / 3600
	}
	if c.MaxRate <= 0 {
		c.MaxRate = 1
	}
	if c.MaxRate < c.MinRate {
		return c, errors.New("fleet: MaxRate below MinRate")
	}
	if c.ConvergeTol <= 0 {
		c.ConvergeTol = 0.05
	}
	if c.ConvergeQuorum == 0 {
		c.ConvergeQuorum = 0.9
	}
	if c.ConvergeQuorum < 0 || c.ConvergeQuorum > 1 {
		return c, errors.New("fleet: ConvergeQuorum outside (0, 1]")
	}
	if c.ScanWindow <= 0 {
		c.ScanWindow = 6 * time.Hour
	}
	if c.Model == (monitor.CostModel{}) {
		c.Model = monitor.DefaultCostModel()
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)
	}
	if c.QualityDevices == 0 {
		c.QualityDevices = 32
	}
	// Validate the estimation knob once, up front.
	if _, err := core.NewEstimator(core.EstimatorConfig{EnergyCutoff: c.EnergyCutoff}); err != nil {
		return c, err
	}
	return c, nil
}

// NewController validates cfg, builds the store if needed, and prepares a
// run over the scenario: every device starts at its production poll rate
// (or, with InitialScan, at the census estimate).
func NewController(scenario *Scenario, cfg ControllerConfig) (*Controller, error) {
	if scenario == nil || scenario.Fleet == nil || len(scenario.Fleet.Devices) == 0 {
		return nil, errors.New("fleet: controller needs a built scenario")
	}
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	n := len(scenario.Fleet.Devices)
	ctl := &Controller{
		cfg:       c,
		scenario:  scenario,
		store:     c.Store,
		rate:      make([]float64, n),
		cursor:    make([]float64, n),
		cost:      make([]monitor.Cost, n),
		converged: make([]bool, n),
		aliased:   make([]bool, n),
		streak:    make([]int, n),
	}
	if ctl.store == nil {
		ctl.store = monitor.NewTieredStore(tsdb.Config{
			Retention: tsdb.RetentionConfig{RawCapacity: 4 * c.SamplesPerRound, TierCapacity: 2 * c.SamplesPerRound},
		})
	}
	for i, d := range scenario.Fleet.Devices {
		ctl.rate[i] = clamp(d.PollRate(), c.MinRate, c.MaxRate)
		ctl.cursor[i] = scenario.PhaseOffset[i]
	}
	if c.InitialScan {
		if err := ctl.census(); err != nil {
			return nil, err
		}
	}
	return ctl, nil
}

// census seeds the loop from a Scanner pass at production rates — the
// PR-1 fleet audit becoming the controller's first estimate.
func (ctl *Controller) census() error {
	sc, err := NewScanner(ScanConfig{
		Workers:       ctl.cfg.Workers,
		Window:        ctl.cfg.ScanWindow,
		WindowSamples: ctl.cfg.SamplesPerRound,
		EnergyCutoff:  ctl.cfg.EnergyCutoff,
	})
	if err != nil {
		return err
	}
	results := make([]DeviceResult, 0, ctl.scenario.Fleet.Len())
	for r := range sc.Scan(ctl.scenario.Fleet) {
		results = append(results, r)
	}
	sort.Slice(results, func(a, b int) bool { return results[a].Index < results[b].Index })
	for _, r := range results {
		ctl.censusC.Add(ctl.cfg.Model, r.Samples)
		switch {
		case errors.Is(r.Err, core.ErrAliased):
			// Under-sampled at the production rate: start the loop above
			// it so the first rounds probe instead of trusting a folded
			// spectrum.
			ctl.rate[r.Index] = clamp(2*r.PollRate, ctl.cfg.MinRate, ctl.cfg.MaxRate)
		case r.Err == nil && r.Result.NyquistRate > 0:
			ctl.rate[r.Index] = clamp(ctl.cfg.Headroom*r.Result.NyquistRate, ctl.cfg.MinRate, ctl.cfg.MaxRate)
		}
	}
	ctl.scanRep = Aggregate(results, ctl.cfg.ScanWindow)
	return nil
}

// CensusReport returns the initial Scanner census aggregate, or nil when
// the run started blind.
func (ctl *Controller) CensusReport() *ScanReport { return ctl.scanRep }

// Store returns the store the run writes through.
func (ctl *Controller) Store() *Store { return ctl.store }

// Round returns the number of completed control rounds.
func (ctl *Controller) Round() int { return ctl.round }

// Rates returns a copy of the current per-device poll rates (hertz),
// indexed like the scenario's Fleet.Devices.
func (ctl *Controller) Rates() []float64 {
	return append([]float64(nil), ctl.rate...)
}

// RoundSummary is the fleet-level outcome of one control round.
type RoundSummary struct {
	// Round is the 1-based round index.
	Round int
	// Samples is the polls taken this round, fleet-wide.
	Samples int
	// FleetHz is the steady-state fleet sample rate granted for the
	// next round (the sum of per-device rates).
	FleetHz float64
	// DemandHz is the fleet's aggregate desired rate before budgeting.
	DemandHz float64
	// Quality is the budget plan's weighted captured-band score in
	// [0, 1] (1 = every device granted at least its desired rate).
	Quality float64
	// Aliased counts devices whose round window carried the aliased
	// signature (their grants probe upward).
	Aliased int
	// Converged counts devices whose granted rate moved by at most the
	// convergence tolerance.
	Converged int
}

// perDevice is one worker's outcome for one device in one round.
type perDevice struct {
	samples int
	aliased bool
	nyquist float64 // clean estimate to feed the store's retention (0 = none)
	err     error
}

// Step runs one control round: poll, estimate, allocate, retune. It
// returns the round's summary. Deterministic: workers write into indexed
// slots and every aggregate is computed in device order.
func (ctl *Controller) Step() (RoundSummary, error) {
	devices := ctl.scenario.Fleet.Devices
	n := len(devices)
	results := make([]perDevice, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < ctl.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = ctl.pollOne(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	ctl.round++
	sum := RoundSummary{Round: ctl.round}
	demands := make([]monitor.Demand, n)
	for i := range results {
		r := &results[i]
		if r.err != nil {
			return sum, fmt.Errorf("fleet: round %d device %s: %w", ctl.round, devices[i].ID, r.err)
		}
		sum.Samples += r.samples
		ctl.cost[i].Add(ctl.cfg.Model, r.samples)
		ctl.aliased[i] = r.aliased
		if r.nyquist > 0 {
			ctl.store.SetNyquist(devices[i].ID, r.nyquist)
		}
		// The §4.2 asymmetry: only a persistent aliased signature may
		// raise a device's rate (a one-window blip is usually noise);
		// clean estimates may only lower or hold it — a clean window
		// certifies the current rate recovers the content, so chasing a
		// noise-floor estimate upward is never warranted.
		var desired float64
		if r.aliased {
			sum.Aliased++
			ctl.streak[i]++
			if ctl.streak[i] >= ctl.cfg.AliasPersistence {
				desired = clamp(2*ctl.rate[i], ctl.cfg.MinRate, ctl.cfg.MaxRate)
			} else {
				desired = ctl.rate[i]
			}
		} else {
			ctl.streak[i] = 0
			desired = clamp(ctl.cfg.Headroom*r.nyquist, ctl.cfg.MinRate, ctl.cfg.MaxRate)
			if desired > ctl.rate[i] {
				desired = ctl.rate[i]
			}
		}
		demands[i] = monitor.Demand{ID: devices[i].ID, NyquistRate: desired}
		sum.DemandHz += desired
	}

	// Fleet-wide allocation: grant every desire when unbudgeted, else
	// spread the budget by weighted proportional fairness.
	granted := make([]float64, n)
	if ctl.cfg.BudgetHz > 0 {
		plan, err := monitor.Allocate(demands, ctl.cfg.BudgetHz)
		if err != nil {
			return sum, err
		}
		for i, a := range plan.Allocations {
			granted[i] = a.Rate
		}
		sum.Quality = plan.QualityScore()
	} else {
		for i := range demands {
			granted[i] = demands[i].NyquistRate
		}
		sum.Quality = 1
	}
	for i := range granted {
		g := clamp(granted[i], ctl.cfg.MinRate, ctl.cfg.MaxRate)
		prev := ctl.rate[i]
		ctl.converged[i] = math.Abs(g-prev) <= ctl.cfg.ConvergeTol*prev
		if ctl.converged[i] {
			sum.Converged++
		}
		ctl.rate[i] = g
		sum.FleetHz += g
	}
	ctl.rounds = append(ctl.rounds, sum)
	return sum, nil
}

// pollOne polls device i for one round at its current rate, streams the
// polls through a fresh estimator window, and writes them to the store.
func (ctl *Controller) pollOne(i int) perDevice {
	d := ctl.scenario.Fleet.Devices[i]
	rate := ctl.rate[i]
	n := ctl.cfg.SamplesPerRound
	out := perDevice{samples: n}
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		out.err = fmt.Errorf("fleet: rate %v too fast to represent", rate)
		return out
	}
	st, err := core.NewStreamEstimator(core.StreamConfig{
		Interval:      interval,
		WindowSamples: n,
		EnergyCutoff:  ctl.cfg.EnergyCutoff,
		// The estimate is read once at the end of the round.
		EmitEvery: 1 << 30,
	})
	if err != nil {
		out.err = err
		return out
	}
	ivs := interval.Seconds()
	base := ctl.cursor[i]
	block := make([]float64, n)
	for k := 0; k < n; k++ {
		v := d.At(base + float64(k)*ivs)
		st.Push(v)
		block[k] = v
	}
	if err := ctl.store.AppendUniform(d.ID, &series.Uniform{
		Start:    ctl.cfg.Start.Add(time.Duration(base * float64(time.Second))),
		Interval: interval,
		Values:   block,
	}); err != nil {
		out.err = err
		return out
	}
	ctl.cursor[i] = base + float64(n)*ivs

	res, err := st.Current()
	switch {
	case errors.Is(err, core.ErrAliased):
		// The window needed (nearly) every bin: content above the
		// current rate's Nyquist limit (or a noise blip — Step's streak
		// logic decides whether to probe upward, §4.2).
		out.aliased = true
	case err != nil:
		out.err = err
	default:
		out.nyquist = res.NyquistRate
	}
	return out
}

// quorum is the device count that must hold within tolerance for the
// fleet to count as converged.
func (ctl *Controller) quorum() int {
	n := len(ctl.rate)
	q := int(math.Ceil(ctl.cfg.ConvergeQuorum * float64(n)))
	if q < 1 {
		q = 1
	}
	if q > n {
		q = n
	}
	return q
}

// Converged reports whether at least the convergence quorum of devices
// held within tolerance on the most recent round.
func (ctl *Controller) Converged() bool {
	if ctl.round == 0 {
		return false
	}
	n := 0
	for _, c := range ctl.converged {
		if c {
			n++
		}
	}
	return n >= ctl.quorum()
}

// Run steps rounds until the fleet converges or maxRounds is reached
// (zero selects the scenario's MaxRounds bound). It returns the report.
func (ctl *Controller) Run(maxRounds int) (*ControllerReport, error) {
	if maxRounds <= 0 {
		maxRounds = ctl.scenario.Spec.MaxRounds
	}
	for r := 0; r < maxRounds; r++ {
		if _, err := ctl.Step(); err != nil {
			return nil, err
		}
		if ctl.Converged() {
			break
		}
	}
	return ctl.Report(), nil
}

// DeviceStatus is one device's view of the control state, for drill-down
// reporting.
type DeviceStatus struct {
	// ID names the metric/device pair.
	ID string
	// ProductionRate is the rate the device polled at before the loop.
	ProductionRate float64
	// Rate is the currently granted rate.
	Rate float64
	// TrueNyquist is the simulation's ground truth.
	TrueNyquist float64
	// Cost is the device's accumulated bill (census + rounds).
	Cost monitor.Cost
	// Aliased reports the last round's aliasing verdict.
	Aliased bool
	// Converged reports whether the last grant held within tolerance.
	Converged bool
}

// Devices returns per-device control state in fleet order.
func (ctl *Controller) Devices() []DeviceStatus {
	out := make([]DeviceStatus, len(ctl.rate))
	for i, d := range ctl.scenario.Fleet.Devices {
		out[i] = DeviceStatus{
			ID:             d.ID,
			ProductionRate: d.PollRate(),
			Rate:           ctl.rate[i],
			TrueNyquist:    d.TrueNyquist,
			Cost:           ctl.cost[i],
			Aliased:        ctl.aliased[i],
			Converged:      ctl.converged[i],
		}
	}
	return out
}

// ControllerReport aggregates a closed-loop run.
type ControllerReport struct {
	// Scenario and Seed identify the workload.
	Scenario string
	// Seed is the scenario build seed.
	Seed int64
	// Devices is the fleet size.
	Devices int
	// Rounds holds one summary per completed round.
	Rounds []RoundSummary
	// ConvergedRound is the first round on which at least the
	// convergence quorum of devices held within tolerance (0 = never
	// during the run).
	ConvergedRound int
	// ProductionHz is the fleet rate before the loop (sum of the ad-hoc
	// production rates).
	ProductionHz float64
	// FinalHz is the fleet rate after the last round.
	FinalHz float64
	// BudgetHz echoes the configured budget (0 = unbudgeted).
	BudgetHz float64
	// TotalCost is the fleet bill: census polls plus every round's.
	TotalCost monitor.Cost
	// RateRatioMedian is the median granted-rate / true-Nyquist ratio —
	// >1 means the fleet polls above ground truth. TrueNyquist tracks
	// each device's base band; transient burst content (the microburst
	// regime) is deliberately excluded, so there the ratio reads high
	// while reconstruction error prices the bursts honestly.
	RateRatioMedian float64
	// Quality is the reconstruction-error audit over the sampled
	// devices (swing-normalized RMSE against the clean signals at the
	// final rates). Zero sample count disables it.
	Quality QualityAudit
	// Store summarizes the storage leg after the run.
	Store tsdb.Stats
}

// QualityAudit is the end-of-run reconstruction check.
type QualityAudit struct {
	// Devices is how many devices were audited.
	Devices int
	// MeanErr and MaxErr are the mean and worst swing-normalized
	// reconstruction RMSE across the audited devices.
	MeanErr, MaxErr float64
}

// Report aggregates the run so far. Deterministic for a given
// configuration and round count.
func (ctl *Controller) Report() *ControllerReport {
	rep := &ControllerReport{
		Scenario: ctl.scenario.Spec.Name,
		Seed:     ctl.scenario.Seed,
		Devices:  len(ctl.rate),
		Rounds:   append([]RoundSummary(nil), ctl.rounds...),
		BudgetHz: ctl.cfg.BudgetHz,
	}
	q := ctl.quorum()
	for _, s := range rep.Rounds {
		if s.Converged >= q {
			rep.ConvergedRound = s.Round
			break
		}
	}
	ratios := make([]float64, 0, rep.Devices)
	for i, d := range ctl.scenario.Fleet.Devices {
		rep.ProductionHz += d.PollRate()
		rep.FinalHz += ctl.rate[i]
		if d.TrueNyquist > 0 {
			ratios = append(ratios, ctl.rate[i]/d.TrueNyquist)
		}
	}
	rep.RateRatioMedian = median(ratios)
	rep.TotalCost = ctl.censusC
	for i := range ctl.cost {
		rep.TotalCost.AddCost(ctl.cost[i])
	}
	rep.Quality = ctl.qualityAudit()
	rep.Store = ctl.store.Stats()
	return rep
}

// qualityAudit measures reconstruction error on a deterministic stride of
// devices: poll each at its final granted rate, linearly reconstruct onto
// a 4x-finer grid, and compare against the clean signal. Errors are
// normalized by the metric's swing so families with different value
// ranges aggregate meaningfully.
func (ctl *Controller) qualityAudit() QualityAudit {
	var q QualityAudit
	if ctl.cfg.QualityDevices < 0 || ctl.round == 0 {
		return q
	}
	n := len(ctl.rate)
	stride := 1
	if ctl.cfg.QualityDevices > 0 && n > ctl.cfg.QualityDevices {
		// Ceil division keeps the audited count at or under the cap.
		stride = (n + ctl.cfg.QualityDevices - 1) / ctl.cfg.QualityDevices
	}
	const polls = 96
	for i := 0; i < n; i += stride {
		d := ctl.scenario.Fleet.Devices[i]
		rate := ctl.rate[i]
		ivs := 1 / rate
		base := ctl.cursor[i]
		pts := make([]series.Point, polls)
		for k := 0; k < polls; k++ {
			ts := base + float64(k)*ivs
			pts[k] = series.Point{
				Time:  ctl.cfg.Start.Add(time.Duration(ts * float64(time.Second))),
				Value: d.At(ts),
			}
		}
		fine, err := series.New(pts).Regularize(time.Duration(ivs/4*float64(time.Second)), series.Linear)
		if err != nil {
			continue
		}
		swing := d.Profile().Swing
		if swing <= 0 {
			continue
		}
		var sumSq float64
		m := fine.Len()
		for k := 0; k < m; k++ {
			ts := base + float64(k)*ivs/4
			diff := fine.Values[k] - d.CleanAt(ts)
			sumSq += diff * diff
		}
		errNorm := math.Sqrt(sumSq/float64(m)) / swing
		q.Devices++
		q.MeanErr += errNorm
		if errNorm > q.MaxErr {
			q.MaxErr = errNorm
		}
	}
	if q.Devices > 0 {
		q.MeanErr /= float64(q.Devices)
	}
	return q
}

// Render formats the report as the closed-loop operator table. Output is
// byte-stable for a fixed configuration (golden tests pin it).
func (r *ControllerReport) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "closed-loop controller: scenario %q, %d devices, seed %d\n", r.Scenario, r.Devices, r.Seed)
	if r.BudgetHz > 0 {
		fmt.Fprintf(&sb, "budget: %.4g Hz fleet-wide\n", r.BudgetHz)
	} else {
		fmt.Fprintf(&sb, "budget: unlimited\n")
	}
	fmt.Fprintf(&sb, "%5s %8s %12s %12s %8s %8s %10s\n",
		"round", "samples", "fleet Hz", "demand Hz", "quality", "aliased", "converged")
	for _, s := range r.Rounds {
		fmt.Fprintf(&sb, "%5d %8d %12.5g %12.5g %8.3f %8d %6d/%d\n",
			s.Round, s.Samples, s.FleetHz, s.DemandHz, s.Quality, s.Aliased, s.Converged, r.Devices)
	}
	if r.ConvergedRound > 0 {
		fmt.Fprintf(&sb, "converged: round %d\n", r.ConvergedRound)
	} else {
		fmt.Fprintf(&sb, "converged: not within %d rounds\n", len(r.Rounds))
	}
	fmt.Fprintf(&sb, "fleet rate: %.5g Hz production -> %.5g Hz closed-loop", r.ProductionHz, r.FinalHz)
	if r.FinalHz > 0 {
		fmt.Fprintf(&sb, " (%.3gx)", r.ProductionHz/r.FinalHz)
	}
	fmt.Fprintf(&sb, "\nmedian granted/true-Nyquist ratio: %.3g\n", r.RateRatioMedian)
	fmt.Fprintf(&sb, "cost: %s\n", r.TotalCost)
	if r.Quality.Devices > 0 {
		fmt.Fprintf(&sb, "reconstruction: mean err %.2f%% of swing, worst %.2f%% (%d devices audited)\n",
			100*r.Quality.MeanErr, 100*r.Quality.MaxErr, r.Quality.Devices)
	}
	fmt.Fprintf(&sb, "store: %d appends, %d retained (%d raw + %d buckets), %d compacted, %d dropped\n",
		r.Store.Appends, r.Store.Retained(), r.Store.RawPoints, r.Store.Buckets, r.Store.Compacted, r.Store.Dropped)
	return sb.String()
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
