package fleet

import (
	"sync"
	"testing"
	"time"
)

// The soak: every catalog regime, a budgeted closed loop, with readers
// hammering the store's query path while the controller's worker pool
// writes through it — the interleaving the race detector must see. The
// run must finish (no estimator/poller/store deadlocks), keep the fleet's
// steady-state cost within budget, and keep reconstruction error under
// the regime's quality bar.
func TestControllerSoakAllRegimes(t *testing.T) {
	devices := 256
	if testing.Short() {
		devices = 64
	}
	for _, sp := range Scenarios() {
		sp := sp
		if sp.Hostile {
			// Hostile regimes attack the ingest wire, not the control
			// loop; their soak lives in TestHostileSoakAllRegimes.
			continue
		}
		t.Run(sp.Name, func(t *testing.T) {
			t.Parallel()
			sc, err := BuildScenario(sp.Name, 29, devices)
			if err != nil {
				t.Fatal(err)
			}
			prod := 0.0
			for _, d := range sc.Fleet.Devices {
				prod += d.PollRate()
			}
			budget := prod * sp.BudgetFraction
			ctl, err := NewController(sc, ControllerConfig{
				Workers:  4,
				BudgetHz: budget,
			})
			if err != nil {
				t.Fatal(err)
			}

			// Concurrent readers: range queries and stats against the
			// store the controller is writing through, until the run
			// ends. Results are discarded; the point is the interleaving.
			done := make(chan struct{})
			var readers sync.WaitGroup
			for r := 0; r < 3; r++ {
				readers.Add(1)
				go func(r int) {
					defer readers.Done()
					store := ctl.Store()
					from := time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)
					to := from.Add(365 * 24 * time.Hour)
					for i := 0; ; i++ {
						select {
						case <-done:
							return
						default:
						}
						d := sc.Fleet.Devices[(i*3+r)%len(sc.Fleet.Devices)]
						_, _ = store.QueryRange(d.ID, from, to, 64)
						if i%16 == 0 {
							_ = store.Stats()
						}
					}
				}(r)
			}

			rep, runErr := ctl.Run(0)
			close(done)
			readers.Wait()
			if runErr != nil {
				t.Fatal(runErr)
			}

			if rep.ConvergedRound == 0 {
				t.Fatalf("%s: no convergence within %d rounds under budget %.4g Hz:\n%s",
					sp.Name, sp.MaxRounds, budget, rep.Render())
			}
			slack := float64(devices) * (1.0 / 3600)
			if rep.FinalHz > budget+slack {
				t.Fatalf("%s: steady-state fleet rate %.4g Hz busts the %.4g Hz budget (+%.4g floor slack)",
					sp.Name, rep.FinalHz, budget, slack)
			}
			if rep.Quality.Devices == 0 {
				t.Fatalf("%s: reconstruction audit sampled no devices", sp.Name)
			}
			if rep.Quality.MeanErr > sp.QualityBar {
				t.Fatalf("%s: mean reconstruction error %.1f%% of swing above the regime's %.0f%% bar",
					sp.Name, 100*rep.Quality.MeanErr, 100*sp.QualityBar)
			}
		})
	}
}
