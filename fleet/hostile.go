package fleet

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/dcsim"
	"repro/internal/monitor"
	"repro/internal/series"
	"repro/internal/tsdb"
)

// The hostile harness: the ingest-side counterpart of the closed-loop
// Controller. Benign regimes are judged on the estimate→poll→retain
// loop; hostile regimes attack the serving path instead — id churn
// against the MaxSeries cap, out-of-order floods against strict append,
// skewed clocks against the interval lock — so their bars are enforced
// on exactly the pipeline nyquistd runs: strict-append store first,
// ingest estimator only for accepted points, rejection counted, never
// absorbed. The harness is single-threaded and deterministic, so golden
// reports pin every counter; the -race soak drives the same runner with
// concurrent store readers.

// HostileConfig parameterizes a hostile run. The zero value reproduces
// the golden-report configuration for the scenario's spec.
type HostileConfig struct {
	// Rounds is the number of wire rounds to run (0 = the spec's
	// MaxRounds).
	Rounds int
	// SamplesPerRound is the per-device round size (0 =
	// dcsim.DefaultSamplesPerRound).
	SamplesPerRound int
	// Window is the ingest estimator's analysis window (0 = 64 — short,
	// so churn epochs and post-step recovery fit in a few rounds).
	Window int
	// EmitEvery is the estimate refresh cadence (0 = 8).
	EmitEvery int
	// Quorum is the fraction of a round's active estimable ids that must
	// be warm with a clean estimate for the round to count as converged
	// (0 = 0.9).
	Quorum float64
	// MaxSeries overrides the estimator capacity (0 = the regime budget:
	// ceil(BudgetFraction x distinct wire ids)).
	MaxSeries int
	// EvictAfter overrides the estimator's LRU idle threshold (0 = one
	// and a half rounds of wire traffic: a live series is observed every
	// round so nothing active ever ages out, while a dead churn epoch is
	// reclaimable from the round after next).
	EvictAfter int
	// Start anchors wire time (zero = the WireGen default).
	Start time.Time
}

func (c HostileConfig) withDefaults(spec ScenarioSpec) HostileConfig {
	if c.Rounds <= 0 {
		c.Rounds = spec.MaxRounds
	}
	if c.SamplesPerRound <= 0 {
		c.SamplesPerRound = dcsim.DefaultSamplesPerRound
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.EmitEvery <= 0 {
		c.EmitEvery = 8
	}
	if c.Quorum <= 0 {
		c.Quorum = 0.9
	}
	return c
}

// HostileRound is one wire round's accounting.
type HostileRound struct {
	// Round is 1-indexed.
	Round int
	// Emitted counts samples put on the wire this round; Late counts the
	// backfilled ones among them.
	Emitted, Late int
	// Accepted and StoreRejected partition Emitted by the strict-append
	// store's verdict.
	Accepted, StoreRejected int
	// EstimatorDropped counts accepted points the estimator declined
	// (new id at a full cap with nothing evictable).
	EstimatorDropped int
	// Evicted is the cumulative estimator eviction count after the round.
	Evicted int64
	// Live is the estimator's series count after the round.
	Live int
	// ActiveEstimable counts ids that traded this round and have seen a
	// full window; WarmClean counts those with a warm, clean estimate.
	ActiveEstimable, WarmClean int
	// QuorumMet reports whether WarmClean reached the quorum.
	QuorumMet bool
}

// HostileReport is a hostile run's full accounting, golden-pinned per
// regime.
type HostileReport struct {
	Spec    ScenarioSpec
	Seed    int64
	Devices int
	Rounds  []HostileRound

	// SamplesPerRound is the per-device round size the run used.
	SamplesPerRound int
	// DistinctIDs is the distinct wire ids the run carried; MaxSeries is
	// the estimator capacity budgeted from it; EvictAfter the LRU idle
	// threshold.
	DistinctIDs, MaxSeries, EvictAfter int

	// ConvergedRound is the first round meeting the warm-clean quorum
	// (0 = never); FinalQuorumMet whether the last round did.
	ConvergedRound int
	FinalQuorumMet bool

	// Wire totals.
	Emitted, Late, Accepted, StoreRejected, EstimatorDropped int
	// Estimator totals.
	Evicted, EstimatorRejected int64
	LiveSeries                 int
	// ReprobedIDs counts live ids whose interval re-locked at least once.
	ReprobedIDs int
	// StoreSeries and StorePoints are the strict store's final holdings.
	StoreSeries, StorePoints int

	// Quality: relative Nyquist-estimate error against device ground
	// truth over the live estimable ids.
	QualityIDs              int
	MedianRelErr, MaxRelErr float64
}

// HostileRunner drives one hostile run. Create with NewHostileRunner,
// read the store concurrently if desired (that is the -race soak), then
// call Run once.
type HostileRunner struct {
	sc    *Scenario
	cfg   HostileConfig
	gen   *dcsim.WireGen
	store *monitor.Store
	est   *monitor.IngestEstimator

	accepted map[string]int
	truth    map[string]float64
}

// NewHostileRunner builds the serving pipeline for one scenario. Any
// catalog scenario is accepted; for benign regimes the wire transforms
// are the identity and the run is a plain ingest replay.
func NewHostileRunner(sc *Scenario, cfg HostileConfig) (*HostileRunner, error) {
	if sc == nil || sc.Fleet == nil || len(sc.Fleet.Devices) == 0 {
		return nil, fmt.Errorf("fleet: hostile runner needs a built scenario")
	}
	cfg = cfg.withDefaults(sc.Spec)
	gen := dcsim.NewWireGen(sc, dcsim.WireConfig{SamplesPerRound: cfg.SamplesPerRound, Start: cfg.Start})
	distinct := gen.DistinctIDs(cfg.Rounds)
	if cfg.MaxSeries <= 0 {
		frac := sc.Spec.BudgetFraction
		if frac <= 0 {
			frac = 1
		}
		cfg.MaxSeries = int(math.Ceil(frac * float64(distinct)))
		if cfg.MaxSeries < 1 {
			cfg.MaxSeries = 1
		}
	}
	if cfg.EvictAfter <= 0 {
		cfg.EvictAfter = 3 * len(sc.Fleet.Devices) * cfg.SamplesPerRound / 2
	}
	store := monitor.NewTieredStore(tsdb.Config{
		Shards:       8,
		StrictAppend: true,
		Retention: tsdb.RetentionConfig{
			RawCapacity:   1024,
			TierCapacity:  256,
			Tiers:         2,
			CompressBlock: 64,
		},
	})
	est := monitor.NewIngestEstimator(store, monitor.IngestConfig{
		WindowSamples: cfg.Window,
		EmitEvery:     cfg.EmitEvery,
		// The paper's 90 % cut-off: with a 64-sample window the default
		// 99 % rides rectangular-window leakage several bins past the
		// band edge.
		EnergyCutoff: 0.9,
		MaxSeries:    cfg.MaxSeries,
		EvictAfter:   cfg.EvictAfter,
	})
	return &HostileRunner{
		sc:       sc,
		cfg:      cfg,
		gen:      gen,
		store:    store,
		est:      est,
		accepted: make(map[string]int),
		truth:    make(map[string]float64),
	}, nil
}

// Store returns the runner's live store — safe to query concurrently
// with Run.
func (r *HostileRunner) Store() *monitor.Store { return r.store }

// Estimator returns the runner's ingest estimator.
func (r *HostileRunner) Estimator() *monitor.IngestEstimator { return r.est }

// Run executes the configured rounds and returns the report.
func (r *HostileRunner) Run() (*HostileReport, error) {
	rep := &HostileReport{
		Spec:            r.sc.Spec,
		Seed:            r.sc.Seed,
		Devices:         len(r.sc.Fleet.Devices),
		SamplesPerRound: r.cfg.SamplesPerRound,
		DistinctIDs:     r.gen.DistinctIDs(r.cfg.Rounds),
		MaxSeries:       r.cfg.MaxSeries,
		EvictAfter:      r.cfg.EvictAfter,
	}
	for round := 1; round <= r.cfg.Rounds; round++ {
		rs := HostileRound{Round: round}
		var active []string
		seen := make(map[string]bool)
		for _, ws := range r.gen.Round() {
			rs.Emitted++
			if ws.Late {
				rs.Late++
			}
			if !seen[ws.ID] {
				seen[ws.ID] = true
				active = append(active, ws.ID)
			}
			p := series.Point{Time: ws.Time, Value: ws.Value}
			if err := r.store.Append(ws.ID, p); err != nil {
				// Mirror the serving path: a rejected append never
				// feeds the estimator — truthful accounting means the
				// estimate only ever reflects what the store holds.
				rs.StoreRejected++
				continue
			}
			rs.Accepted++
			r.accepted[ws.ID]++
			r.truth[ws.ID] = r.sc.Fleet.Devices[ws.Device].TrueNyquist
			if !r.est.Observe(ws.ID, p) {
				rs.EstimatorDropped++
			}
		}
		for _, id := range active {
			if r.accepted[id] < r.cfg.Window {
				continue
			}
			rs.ActiveEstimable++
			if adv, ok := r.est.Advice(id); ok && adv.Warm && adv.NyquistRate > 0 {
				rs.WarmClean++
			}
		}
		rs.QuorumMet = rs.ActiveEstimable > 0 &&
			float64(rs.WarmClean) >= r.cfg.Quorum*float64(rs.ActiveEstimable)
		rs.Evicted = r.est.Evicted()
		rs.Live = r.est.Len()
		rep.Rounds = append(rep.Rounds, rs)

		rep.Emitted += rs.Emitted
		rep.Late += rs.Late
		rep.Accepted += rs.Accepted
		rep.StoreRejected += rs.StoreRejected
		rep.EstimatorDropped += rs.EstimatorDropped
		if rs.QuorumMet && rep.ConvergedRound == 0 {
			rep.ConvergedRound = round
		}
		if round == r.cfg.Rounds {
			rep.FinalQuorumMet = rs.QuorumMet
		}
	}

	rep.Evicted = r.est.Evicted()
	rep.EstimatorRejected = r.est.Rejected()
	rep.LiveSeries = r.est.Len()
	st := r.store.Stats()
	rep.StoreSeries = st.Series
	rep.StorePoints = int(st.Appends)

	// Final quality sweep over the live estimable ids, in sorted id
	// order for determinism.
	ids := make([]string, 0, len(r.accepted))
	for id := range r.accepted {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var errs []float64
	for _, id := range ids {
		adv, ok := r.est.Advice(id)
		if !ok {
			continue
		}
		if adv.Reprobes > 0 {
			rep.ReprobedIDs++
		}
		if r.accepted[id] < r.cfg.Window || adv.NyquistRate <= 0 {
			continue
		}
		truth := r.truth[id]
		if truth <= 0 {
			continue
		}
		errs = append(errs, math.Abs(adv.NyquistRate-truth)/truth)
	}
	rep.QualityIDs = len(errs)
	if len(errs) > 0 {
		sort.Float64s(errs)
		rep.MedianRelErr = errs[len(errs)/2]
		rep.MaxRelErr = errs[len(errs)-1]
	}
	return rep, nil
}

// RunHostile builds the pipeline and runs the scenario in one call — the
// golden-report entry point.
func RunHostile(sc *Scenario, cfg HostileConfig) (*HostileReport, error) {
	r, err := NewHostileRunner(sc, cfg)
	if err != nil {
		return nil, err
	}
	return r.Run()
}

// Render produces the byte-stable text report pinned by the golden
// files: every counter of every round, the convergence verdict, and the
// quality tail.
func (r *HostileReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== hostile regime %s (seed %d, %d devices) ===\n", r.Spec.Name, r.Seed, r.Devices)
	fmt.Fprintf(&b, "%s\n", r.Spec.Description)
	fmt.Fprintf(&b, "wire: %d rounds x %d samples/device; distinct ids %d\n",
		len(r.Rounds), r.SamplesPerRound, r.DistinctIDs)
	fmt.Fprintf(&b, "estimator: cap %d series (budget %.0f%% of ids), evict after %d idle obs\n",
		r.MaxSeries, 100*r.Spec.BudgetFraction, r.EvictAfter)
	fmt.Fprintf(&b, "%5s %8s %6s %9s %9s %8s %8s %6s %12s\n",
		"round", "emitted", "late", "accepted", "rejected", "est-drop", "evicted", "live", "warm-clean")
	for _, rs := range r.Rounds {
		mark := " "
		if rs.QuorumMet {
			mark = "*"
		}
		fmt.Fprintf(&b, "%5d %8d %6d %9d %9d %8d %8d %6d %7d/%-4d%s\n",
			rs.Round, rs.Emitted, rs.Late, rs.Accepted, rs.StoreRejected,
			rs.EstimatorDropped, rs.Evicted, rs.Live, rs.WarmClean, rs.ActiveEstimable, mark)
	}
	if r.ConvergedRound > 0 {
		fmt.Fprintf(&b, "converged: round %d of %d (quorum of active estimable ids warm+clean)\n",
			r.ConvergedRound, r.Spec.MaxRounds)
	} else {
		fmt.Fprintf(&b, "converged: never within %d rounds\n", r.Spec.MaxRounds)
	}
	fmt.Fprintf(&b, "final round quorum met: %v\n", r.FinalQuorumMet)
	fmt.Fprintf(&b, "wire totals: emitted %d (late %d), accepted %d, store-rejected %d, estimator-dropped %d\n",
		r.Emitted, r.Late, r.Accepted, r.StoreRejected, r.EstimatorDropped)
	fmt.Fprintf(&b, "estimator totals: live %d, evicted %d, cap-rejected %d, reprobed ids %d\n",
		r.LiveSeries, r.Evicted, r.EstimatorRejected, r.ReprobedIDs)
	fmt.Fprintf(&b, "store: %d series, %d points accepted\n", r.StoreSeries, r.StorePoints)
	fmt.Fprintf(&b, "quality: median rel err %.1f%% over %d estimable ids (max %.1f%%), bar %.0f%%\n",
		100*r.MedianRelErr, r.QualityIDs, 100*r.MaxRelErr, 100*r.Spec.QualityBar)
	return b.String()
}
