package nyquist_test

import (
	"fmt"
	"math"
	"time"

	"repro/nyquist"
)

// ExampleStreamEstimator demonstrates the streaming engine: polls arrive
// one at a time, the estimator keeps a sliding six-hour window, and each
// emission carries the current Nyquist rate and the sweet-spot poll
// interval — no full-trace FFT, no unbounded buffering.
func ExampleStreamEstimator() {
	st, _ := nyquist.NewStreamEstimator(nyquist.StreamConfig{
		Interval:      time.Minute,
		WindowSamples: 360, // six hours of 1-minute polls
		EmitEvery:     60,  // one update per hour
		Start:         time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC),
	})

	// Simulate half a day of 1-minute polls of a 12-cycles/day signal.
	for i := 0; i < 720; i++ {
		t := float64(i) * 60
		up := st.Push(50 + 5*math.Sin(2*math.Pi*12/86400*t))
		if up == nil {
			continue // warming up, or between emissions
		}
		fmt.Printf("%s  nyquist %.1f cycles/day  poll every %v\n",
			up.Time.Format("15:04"),
			up.Result.NyquistRate*86400,
			up.SuggestedInterval.Round(time.Minute))
	}
	// Output:
	// 05:59  nyquist 24.0 cycles/day  poll every 50m0s
	// 06:59  nyquist 24.0 cycles/day  poll every 50m0s
	// 07:59  nyquist 24.0 cycles/day  poll every 50m0s
	// 08:59  nyquist 24.0 cycles/day  poll every 50m0s
	// 09:59  nyquist 24.0 cycles/day  poll every 50m0s
	// 10:59  nyquist 24.0 cycles/day  poll every 50m0s
	// 11:59  nyquist 24.0 cycles/day  poll every 50m0s
}
