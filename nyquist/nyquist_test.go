package nyquist_test

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/nyquist"
)

var t0 = time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)

// TestPublicAPIEndToEnd walks the full workflow advertised in the package
// doc: build a trace, estimate its Nyquist rate, downsample, reconstruct,
// and verify fidelity — all through the public API only.
func TestPublicAPIEndToEnd(t *testing.T) {
	// A day of 1-minute polls of a signal with 12 cycles/day content.
	const n = 1440
	vals := make([]float64, n)
	for i := range vals {
		ts := float64(i) * 60
		vals[i] = 50 + 5*math.Sin(2*math.Pi*12/86400*ts)
	}
	u, err := nyquist.NewUniform(t0, time.Minute, vals)
	if err != nil {
		t.Fatal(err)
	}

	var est nyquist.Estimator
	res, err := est.Estimate(u)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 12.0 / 86400
	if math.Abs(res.NyquistRate-want) > 3*res.Spectrum.BinWidth() {
		t.Fatalf("NyquistRate = %v, want ~%v", res.NyquistRate, want)
	}
	if !res.Oversampled() {
		t.Fatal("1-minute polling of a 12-cycle/day signal is oversampled")
	}

	rec, fid, err := nyquist.RoundTrip(u, 1.2*res.NyquistRate, nyquist.ReconstructConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Values) != n {
		t.Fatalf("reconstruction length %d", len(rec.Values))
	}
	// FFT reconstruction of a non-periodic window rings at the edges;
	// overall error stays small and the interior is essentially exact.
	if fid.NRMSE > 0.05 {
		t.Fatalf("NRMSE = %v", fid.NRMSE)
	}
	interior, err := nyquist.CompareSignals(vals[n/10:9*n/10], rec.Values[n/10:9*n/10])
	if err != nil {
		t.Fatal(err)
	}
	if interior.NRMSE > 0.02 {
		t.Fatalf("interior NRMSE = %v", interior.NRMSE)
	}
	if fid.CostReduction() < 10 {
		t.Fatalf("cost reduction = %v", fid.CostReduction())
	}
}

func TestPublicIrregularSeriesWorkflow(t *testing.T) {
	s := nyquist.NewSeries(nil)
	for i := 0; i < 600; i++ {
		jitter := time.Duration(i%7) * 250 * time.Millisecond
		ts := t0.Add(time.Duration(i)*30*time.Second + jitter)
		s.AppendValue(ts, math.Sin(2*math.Pi*float64(i)/120))
	}
	u, err := s.Regularize(30*time.Second, nyquist.NearestNeighbor)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() < 590 {
		t.Fatalf("regularized length %d", u.Len())
	}
	var est nyquist.Estimator
	if _, err := est.EstimateSeries(s); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAliasedSentinel(t *testing.T) {
	vals := make([]float64, 512)
	state := uint64(1)
	for i := range vals {
		state = state*6364136223846793005 + 1442695040888963407
		vals[i] = float64(int64(state)) / math.MaxInt64
	}
	u, err := nyquist.NewUniform(t0, time.Second, vals)
	if err != nil {
		t.Fatal(err)
	}
	var est nyquist.Estimator
	res, err := est.Estimate(u)
	if !errors.Is(err, nyquist.ErrAliased) {
		t.Fatalf("white noise err = %v, want ErrAliased", err)
	}
	if res == nil || !res.Aliased {
		t.Fatal("aliased result not populated")
	}
}

func TestPublicDualRate(t *testing.T) {
	sig := nyquist.SamplerFunc(func(ts float64) float64 {
		return math.Sin(2*math.Pi*0.5*ts) + math.Sin(2*math.Pi*7*ts)
	})
	det := nyquist.NewDualRateDetector(nyquist.DualRateConfig{})
	slow := nyquist.SuggestSlowRate(11)
	if err := nyquist.ValidateRatePair(11, slow); err != nil {
		t.Fatal(err)
	}
	v, _, err := det.Probe(sig, 0, 60, 37, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Aliased {
		t.Fatalf("7 Hz content vs 11 Hz sampling must alias (score %v)", v.Score)
	}
}

func TestPublicAdaptiveSampler(t *testing.T) {
	sig := nyquist.SamplerFunc(func(ts float64) float64 {
		return math.Sin(2 * math.Pi * 0.5 * ts)
	})
	a, err := nyquist.NewAdaptiveSampler(nyquist.AdaptiveConfig{
		InitialRate:   0.3,
		MaxRate:       32,
		EpochDuration: 120,
	})
	if err != nil {
		t.Fatal(err)
	}
	run, err := a.Run(sig, 0, 120*20)
	if err != nil {
		t.Fatal(err)
	}
	if run.ConvergedRate() < 1 || run.ConvergedRate() > 8 {
		t.Fatalf("converged rate %v, want ~2 (2x headroom on 1 Hz Nyquist)", run.ConvergedRate())
	}
	if run.Epochs[0].Mode != nyquist.Probing {
		t.Fatal("loop must start probing")
	}
}

func TestPublicSpectral(t *testing.T) {
	x := make([]float64, 1024)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 64 * float64(i) / 1024)
	}
	spec, err := nyquist.Periodogram(x, 1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	peak, _ := spec.PeakFrequency(1)
	if math.Abs(peak-64) > 1 {
		t.Fatalf("peak = %v, want 64", peak)
	}
	y := nyquist.IFFT(nyquist.FFT([]complex128{1, 2, 3, 4}))
	if math.Abs(real(y[2])-3) > 1e-9 {
		t.Fatalf("FFT round trip broken: %v", y)
	}
	lo, err := nyquist.LowPassFFT(x, 1024, 10)
	if err != nil {
		t.Fatal(err)
	}
	var rms float64
	for _, v := range lo {
		rms += v * v
	}
	if rms > 1e-12 {
		t.Fatalf("64 Hz tone survived a 10 Hz low-pass: %v", rms)
	}
}

func TestPublicSTFTAndPlan(t *testing.T) {
	x := make([]float64, 2048)
	for i := range x {
		f := 10.0
		if i >= 1024 {
			f = 60
		}
		x[i] = math.Sin(2 * math.Pi * f * float64(i) / 256)
	}
	sg, err := (nyquist.STFT{SegmentLen: 256}).Compute(x, 256)
	if err != nil {
		t.Fatal(err)
	}
	cut := sg.FrameCutoff(0.99)
	if cut[0] > 20 || cut[len(cut)-1] < 50 {
		t.Fatalf("cutoff trace %v .. %v does not follow the chirp", cut[0], cut[len(cut)-1])
	}
	p, err := nyquist.NewPlan(256)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]complex128, 256)
	for i := range buf {
		buf[i] = complex(x[i], 0)
	}
	if err := p.Forward(buf, buf); err != nil {
		t.Fatal(err)
	}
}

func TestPublicQuantizer(t *testing.T) {
	q, err := nyquist.NewQuantizer(0.5)
	if err != nil {
		t.Fatal(err)
	}
	got := q.Apply([]float64{0.2, 0.3, 0.76})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("quantized = %v, want %v", got, want)
		}
	}
	if step := nyquist.EstimateStep(got); step != 0.5 {
		t.Fatalf("EstimateStep = %v", step)
	}
}
