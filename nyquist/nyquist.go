// Package nyquist is the public API of the monitoring cost/quality toolkit
// — a reproduction of "Towards a Cost vs. Quality Sweet Spot for Monitoring
// Networks" (HotNets 2021).
//
// The toolkit treats periodically polled datacenter metrics as sampled
// time-series signals and applies the Nyquist-Shannon theorem to answer
// the question operators usually answer with gut feeling: how often does
// this metric actually need to be measured?
//
// Workflow:
//
//  1. Wrap a trace as a Series (irregular timestamps welcome) or a Uniform
//     signal, e.g. from your TSDB export.
//  2. Estimate its Nyquist rate with an Estimator — the paper's FFT/PSD
//     method with a 99 % energy cut-off (§3.2). An ErrAliased result means
//     the trace is already under-sampled and the rate cannot be trusted.
//  3. Downsample to the Nyquist rate for storage (Downsample/RoundTrip)
//     and reconstruct on demand (Reconstruct, §4.3), or run the
//     AdaptiveSampler loop to pick poll rates on-line (§4.2) with
//     dual-rate aliasing detection (§4.1).
//
// See the examples directory for runnable end-to-end programs and package
// fleet for the synthetic-datacenter simulation used by the paper-figure
// experiments.
package nyquist

import (
	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/series"
)

// Re-exported time-series types (see package documentation for workflow).
type (
	// Point is a single timestamped observation.
	Point = series.Point
	// Series is a possibly irregular sequence of observations.
	Series = series.Series
	// Uniform is a regularly sampled signal.
	Uniform = series.Uniform
	// Interpolation selects how Regularize fills grid slots.
	Interpolation = series.Interpolation
	// Gap is a stretch of missing samples.
	Gap = series.Gap
	// FiveNumber is a box-plot summary.
	FiveNumber = series.FiveNumber
	// Summary holds descriptive statistics.
	Summary = series.Summary
)

// Interpolation policies for Series.Regularize.
const (
	// NearestNeighbor is the paper's pre-cleaning default (§3.2).
	NearestNeighbor = series.NearestNeighbor
	// Linear interpolates between bracketing samples.
	Linear = series.Linear
	// PreviousValue holds the last observation.
	PreviousValue = series.PreviousValue
)

// Re-exported estimation types.
type (
	// Estimator computes Nyquist rates from traces (§3.2). The zero
	// value uses the paper's defaults.
	Estimator = core.Estimator
	// EstimatorConfig parameterizes estimation.
	EstimatorConfig = core.EstimatorConfig
	// Result is a Nyquist-rate estimate.
	Result = core.Result
	// WindowedResult is one step of a moving-window scan (Fig. 7).
	WindowedResult = core.WindowedResult
)

// Re-exported aliasing-detection types (§4.1).
type (
	// DualRateDetector compares spectra sampled at two rates.
	DualRateDetector = core.DualRateDetector
	// DualRateConfig parameterizes detection.
	DualRateConfig = core.DualRateConfig
	// Verdict is a detection outcome.
	Verdict = core.Verdict
	// Sampler is a continuous signal source.
	Sampler = core.Sampler
	// SamplerFunc adapts a function to Sampler.
	SamplerFunc = core.SamplerFunc
)

// Re-exported adaptive-sampling types (§4.2).
type (
	// AdaptiveSampler drives the probe/converge/decay loop.
	AdaptiveSampler = core.AdaptiveSampler
	// AdaptiveConfig parameterizes the loop.
	AdaptiveConfig = core.AdaptiveConfig
	// Epoch is one adaptation step.
	Epoch = core.Epoch
	// RunResult is a full adaptation log.
	RunResult = core.RunResult
	// Mode is the loop state (Probing or Converged).
	Mode = core.Mode
)

// Adaptive sampler modes.
const (
	// Probing means the rate is being increased multiplicatively.
	Probing = core.Probing
	// Converged means the loop tracks an estimated Nyquist rate.
	Converged = core.Converged
)

// Re-exported streaming-estimation types (the incremental counterpart of
// Estimator: bounded memory, O(window) work per poll).
type (
	// StreamEstimator maintains a sliding-window spectral estimate over
	// a live stream of polls.
	StreamEstimator = core.StreamEstimator
	// StreamConfig parameterizes streaming estimation.
	StreamConfig = core.StreamConfig
	// StreamUpdate is one emission: the windowed estimate plus aliasing
	// risk and the sweet-spot poll interval.
	StreamUpdate = core.StreamUpdate
)

// NewStreamEstimator validates cfg and returns a StreamEstimator.
var NewStreamEstimator = core.NewStreamEstimator

// Re-exported multivariate types (§6 "Multivariate signals").
type (
	// GroupResult is the joint Nyquist analysis of a signal set.
	GroupResult = core.GroupResult
)

// Re-exported ergodicity types (§6 "Beyond Nyquist").
type (
	// ErgodicityReport compares time averages against ensemble averages.
	ErgodicityReport = core.ErgodicityReport
)

// DetrendMode selects the estimator's pre-FFT trend removal.
type DetrendMode = core.DetrendMode

// Detrend modes.
const (
	// DetrendMean subtracts the mean (default).
	DetrendMean = core.DetrendMean
	// DetrendLinear removes the least-squares line, robust for windows
	// shorter than the slowest component's period.
	DetrendLinear = core.DetrendLinear
	// DetrendNone analyzes raw samples.
	DetrendNone = core.DetrendNone
)

// Re-exported reconstruction and fidelity types (§4.3).
type (
	// ReconstructConfig parameterizes reconstruction.
	ReconstructConfig = core.ReconstructConfig
	// Fidelity quantifies reconstruction quality.
	Fidelity = core.Fidelity
)

// Re-exported spectral types.
type (
	// Spectrum is a one-sided power spectral density.
	Spectrum = dsp.Spectrum
	// Window tapers a signal before spectral analysis.
	Window = dsp.Window
	// WelchConfig parameterizes Welch PSD estimation.
	WelchConfig = dsp.WelchConfig
	// Quantizer models sensor resolution.
	Quantizer = dsp.Quantizer
	// STFT is a short-time Fourier transform configuration.
	STFT = dsp.STFT
	// Spectrogram is a time-resolved spectral view.
	Spectrogram = dsp.Spectrogram
	// Plan is a reusable allocation-free FFT execution plan.
	Plan = dsp.Plan
)

// NewPlan builds a reusable FFT plan for one power-of-two size.
var NewPlan = dsp.NewPlan

// Sentinel errors.
var (
	// ErrAliased marks traces whose Nyquist rate is unrecoverable
	// because they are already aliased (the paper's −1).
	ErrAliased = core.ErrAliased
	// ErrTooShort marks traces with too few samples.
	ErrTooShort = core.ErrTooShort
	// ErrRateRatio marks invalid dual-rate probe pairs.
	ErrRateRatio = core.ErrRateRatio
	// ErrLengthMismatch marks fidelity comparisons of unequal signals.
	ErrLengthMismatch = core.ErrLengthMismatch
)

// DefaultEnergyCutoff is the paper's 99 % energy threshold.
const DefaultEnergyCutoff = core.DefaultEnergyCutoff

// NewSeries returns a Series over the given points (copied, sorted).
func NewSeries(points []Point) *Series { return series.New(points) }

// NewUniform constructs a uniformly sampled signal.
var NewUniform = series.NewUniform

// AlignToCommonGrid regularizes several differently polled series onto
// one shared grid, the preparation step for multivariate analysis (§6).
var AlignToCommonGrid = series.AlignToCommonGrid

// NewEstimator validates cfg and returns an Estimator.
var NewEstimator = core.NewEstimator

// NewDualRateDetector returns a §4.1 aliasing detector.
var NewDualRateDetector = core.NewDualRateDetector

// NewAdaptiveSampler returns a §4.2 adaptive sampling loop.
var NewAdaptiveSampler = core.NewAdaptiveSampler

// ValidateRatePair checks a dual-rate probe pair.
var ValidateRatePair = core.ValidateRatePair

// SuggestSlowRate picks a companion probe rate with a safe ratio.
var SuggestSlowRate = core.SuggestSlowRate

// Downsample re-samples a trace to a target rate with anti-alias
// filtering.
var Downsample = core.Downsample

// DownsampleRaw keeps every k-th sample with no filtering.
var DownsampleRaw = core.DownsampleRaw

// Reconstruct up-samples a Nyquist-rate trace by band-limited
// interpolation (§4.3).
var Reconstruct = core.Reconstruct

// RoundTrip downsamples and reconstructs, returning fidelity metrics —
// the Fig. 6 experiment.
var RoundTrip = core.RoundTrip

// CompareSignals computes fidelity metrics between two signals.
var CompareSignals = core.CompareSignals

// Periodogram computes a one-sided PSD with a single windowed FFT.
var Periodogram = dsp.Periodogram

// Welch computes a variance-reduced PSD by averaging segments.
var Welch = dsp.Welch

// FFT returns the discrete Fourier transform of x.
var FFT = dsp.FFT

// IFFT returns the inverse transform.
var IFFT = dsp.IFFT

// LowPassFFT removes content above a cutoff frequency.
var LowPassFFT = dsp.LowPassFFT

// NewQuantizer returns a sensor-resolution model.
var NewQuantizer = dsp.NewQuantizer

// EstimateStep guesses a trace's quantization step.
var EstimateStep = dsp.EstimateStep

// MedianFilter removes impulsive noise with a sliding median.
var MedianFilter = dsp.MedianFilter

// Autocorrelation returns the normalized sample autocorrelation.
var Autocorrelation = dsp.Autocorrelation

// CrossCorrelation returns the zero-lag Pearson correlation of two
// signals — the joint statistic multivariate consumers care about (§6).
var CrossCorrelation = core.CrossCorrelation

// GroupRoundTrip verifies a signal set survives a group-rate round trip
// with correlations intact (§6).
var GroupRoundTrip = core.GroupRoundTrip

// KSDistance is the two-sample Kolmogorov-Smirnov statistic.
var KSDistance = core.KSDistance

// MeasureErgodicity compares per-device temporal distributions against
// the fleet ensemble (§6's canarying assumption, made measurable).
var MeasureErgodicity = core.MeasureErgodicity

// CanaryHorizon reports how many samples a canary device needs before its
// statistics match the ensemble (-1 when they never do).
var CanaryHorizon = core.CanaryHorizon
