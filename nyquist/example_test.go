package nyquist_test

import (
	"fmt"
	"math"
	"time"

	"repro/nyquist"
)

// ExampleEstimator demonstrates the paper's §3.2 method on a day of
// one-minute polls: the signal completes 12 cycles per day, so its
// Nyquist rate is 24 cycles per day and the 1-minute polling is 60x too
// fast.
func ExampleEstimator() {
	start := time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)
	vals := make([]float64, 1440)
	for i := range vals {
		t := float64(i) * 60
		vals[i] = 50 + 5*math.Sin(2*math.Pi*12/86400*t)
	}
	trace, _ := nyquist.NewUniform(start, time.Minute, vals)

	var est nyquist.Estimator // zero value = the paper's defaults
	res, err := est.Estimate(trace)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("nyquist rate: %.1f cycles/day\n", res.NyquistRate*86400)
	fmt.Printf("oversampling: %.0fx\n", res.ReductionRatio)
	// Output:
	// nyquist rate: 24.0 cycles/day
	// oversampling: 60x
}

// ExampleRoundTrip shows the Fig. 6 experiment: keep only Nyquist-rate
// samples and reconstruct the rest on demand.
func ExampleRoundTrip() {
	start := time.Date(2021, 11, 10, 0, 0, 0, 0, time.UTC)
	vals := make([]float64, 1440)
	for i := range vals {
		vals[i] = math.Sin(2 * math.Pi * 12 * float64(i) / 1440)
	}
	trace, _ := nyquist.NewUniform(start, time.Minute, vals)

	_, fid, err := nyquist.RoundTrip(trace, 1.5*24.0/86400, nyquist.ReconstructConfig{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("kept %d of %d samples\n", fid.SamplesAfter, fid.SamplesBefore)
	fmt.Printf("lossless: %v\n", fid.L2 < 1e-6)
	// Output:
	// kept 36 of 1440 samples
	// lossless: true
}

// ExampleValidateRatePair shows the §4.1 constraint on dual-rate probe
// pairs: integer ratios are blind to aliasing and are rejected.
func ExampleValidateRatePair() {
	fmt.Println(nyquist.ValidateRatePair(10, 5))
	fmt.Println(nyquist.ValidateRatePair(10, nyquist.SuggestSlowRate(10)))
	// Output:
	// core: dual-rate sampling requires a non-integer rate ratio
	// <nil>
}
